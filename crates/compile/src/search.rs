//! QUBO coefficient search (the paper's Z3 step, §V).
//!
//! Given a constraint shape — the multiset of variable multiplicities
//! plus the selection set — find rational QUBO coefficients over the
//! constraint's variables and `a` ancillas such that:
//!
//! * every satisfying assignment attains energy 0 for *some* ancilla
//!   setting and never drops below 0, and
//! * every violating assignment has energy ≥ 1 for *every* ancilla
//!   setting.
//!
//! That is exactly a QF_LRA formula with one disjunction per satisfying
//! assignment ("which ancilla setting is the ground witness"), which we
//! hand to [`nck_smt::DisjunctiveProblem`]. Two search modes:
//!
//! * **symmetric** — coefficients are shared between variables of equal
//!   multiplicity, so the LP is over count vectors rather than raw
//!   assignments. Exponentially smaller and almost always sufficient.
//! * **general** — one coefficient per variable/pair, used as a
//!   fallback for small shapes when the symmetric ansatz fails.
//!
//! Ancillas escalate 0, 1, 2, … up to [`MAX_ANCILLAS`]; the first hit
//! wins, so the ancilla count is minimal for the modes tried.

use crate::error::CompileError;
use crate::rqubo::RationalQubo;
use nck_smt::{DisjunctiveProblem, LinConstraint, LinExpr, Rational, Relation};
use std::collections::BTreeSet;

/// Maximum number of ancilla variables the search will try.
pub const MAX_ANCILLAS: u32 = 3;

/// Largest `variables + ancillas` for which the general (asymmetric)
/// fallback enumerates raw assignments.
const GENERAL_LIMIT: usize = 8;

/// A constraint shape: per-distinct-variable multiplicities (local
/// variable order) and the selection set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConstraintShape {
    /// Multiplicity of each distinct variable, in local variable order.
    pub multiplicities: Vec<u32>,
    /// The selection set.
    pub selection: BTreeSet<u32>,
}

impl ConstraintShape {
    /// Number of distinct variables.
    pub fn num_vars(&self) -> usize {
        self.multiplicities.len()
    }

    /// True iff the weighted TRUE-count of `bits` is in the selection.
    pub fn satisfied_by(&self, bits: u64) -> bool {
        let count: u32 = self
            .multiplicities
            .iter()
            .enumerate()
            .map(|(i, &m)| if bits >> i & 1 == 1 { m } else { 0 })
            .sum();
        self.selection.contains(&count)
    }

    /// True iff at least one assignment satisfies the shape.
    pub fn satisfiable(&self) -> bool {
        (0..1u64 << self.num_vars()).any(|bits| self.satisfied_by(bits))
    }
}

/// A compiled per-constraint QUBO: exact coefficients over
/// `[vars..., ancillas...]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompiledQubo {
    /// The exact-coefficient QUBO.
    pub qubo: RationalQubo,
    /// Number of real (constraint) variables; they occupy local indices
    /// `0..num_real`.
    pub num_real: usize,
    /// Number of ancilla variables, at local indices `num_real..`.
    pub num_ancillas: usize,
}

impl CompiledQubo {
    /// Penalty of assignment `bits` over the real variables: the energy
    /// minimized over ancilla settings. Zero iff the assignment
    /// satisfies the source constraint.
    pub fn penalty(&self, bits: u64) -> Rational {
        self.qubo.min_over_ancillas(bits, self.num_real)
    }

    /// The worst-case penalty over all real-variable assignments — used
    /// to weight hard constraints above the sum of soft penalties.
    pub fn max_penalty(&self) -> Rational {
        (0..1u64 << self.num_real)
            .map(|bits| self.penalty(bits))
            .max()
            .expect("at least one assignment")
    }
}

/// How violating assignments must be priced.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GapMode {
    /// Every violation costs at least 1 (sufficient for hard
    /// constraints: any violation already outweighs all soft terms
    /// after program-level scaling).
    AtLeastOne,
    /// Every violation costs *exactly* 1 (required for soft
    /// constraints: Definition 6 counts violated constraints, so the
    /// QUBO penalty must be flat across violating assignments).
    ExactlyOne,
}

/// Verify that `compiled` represents `shape` exactly: satisfying
/// assignments have penalty 0, violating ones ≥ 1 (or = 1 under
/// [`GapMode::ExactlyOne`]). This re-checks the SMT witness with
/// independent arithmetic, so a compiler bug cannot silently ship a
/// wrong table.
pub fn verify_mode(compiled: &CompiledQubo, shape: &ConstraintShape, mode: GapMode) -> bool {
    let one = Rational::one();
    for bits in 0..1u64 << compiled.num_real {
        let p = compiled.penalty(bits);
        if shape.satisfied_by(bits) {
            if !p.is_zero() {
                return false;
            }
        } else {
            match mode {
                GapMode::AtLeastOne => {
                    if p < one {
                        return false;
                    }
                }
                GapMode::ExactlyOne => {
                    if p != one {
                        return false;
                    }
                }
            }
        }
    }
    true
}

/// [`verify_mode`] with the hard-constraint gap.
pub fn verify(compiled: &CompiledQubo, shape: &ConstraintShape) -> bool {
    verify_mode(compiled, shape, GapMode::AtLeastOne)
}

/// Find a QUBO for `shape` under `mode`, escalating ancillas
/// 0..=`max_ancillas` and trying the symmetric ansatz before the
/// general one at each level.
pub fn find_qubo_mode(
    shape: &ConstraintShape,
    max_ancillas: u32,
    mode: GapMode,
) -> Result<CompiledQubo, CompileError> {
    if !shape.satisfiable() {
        return Err(CompileError::Unsatisfiable(format!(
            "shape {:?} / selection {:?} has no satisfying assignment",
            shape.multiplicities, shape.selection
        )));
    }
    for a in 0..=max_ancillas {
        if let Some(c) = search_symmetric(shape, a as usize, mode) {
            debug_assert!(verify_mode(&c, shape, mode));
            return Ok(c);
        }
        if shape.num_vars() + a as usize <= GENERAL_LIMIT {
            if let Some(c) = search_general(shape, a as usize, mode) {
                debug_assert!(verify_mode(&c, shape, mode));
                return Ok(c);
            }
        }
    }
    Err(CompileError::NoQuboFound {
        ancillas_tried: max_ancillas,
        shape: format!("{:?} / {:?}", shape.multiplicities, shape.selection),
    })
}

/// [`find_qubo_mode`] with the hard-constraint gap.
pub fn find_qubo(shape: &ConstraintShape, max_ancillas: u32) -> Result<CompiledQubo, CompileError> {
    find_qubo_mode(shape, max_ancillas, GapMode::AtLeastOne)
}

/// Whether coefficient searches polish their witness to an L1-minimal
/// table (smaller coefficients → better hardware dynamic range and
/// tables closer to handcrafted ones). On by default; exposed for the
/// compile-time benchmarks.
pub static SOLVE_MINIMIZE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(true);

/// Solve `problem` over `base_unknowns` coefficients, optionally
/// appending one auxiliary `t_k ≥ |x_k|` per unknown and minimizing
/// `Σ t_k` within the found branch.
fn solve_coefficients(
    mut problem: DisjunctiveProblem,
    base_unknowns: usize,
) -> Option<Vec<Rational>> {
    if !SOLVE_MINIMIZE.load(std::sync::atomic::Ordering::Relaxed) {
        return problem.solve();
    }
    // The DisjunctiveProblem was created with room for the aux block
    // (see callers): unknowns [base..2·base) are the t_k.
    let mut objective = LinExpr::zero();
    for k in 0..base_unknowns {
        let t = base_unknowns + k;
        // t − x ≥ 0 and t + x ≥ 0.
        let mut ge_pos = LinExpr::var(t);
        ge_pos.add_term(k, -Rational::one());
        problem.require(LinConstraint::new(ge_pos, Relation::Ge));
        let mut ge_neg = LinExpr::var(t);
        ge_neg.add_term(k, Rational::one());
        problem.require(LinConstraint::new(ge_neg, Relation::Ge));
        objective.add_term(t, Rational::one());
    }
    problem.solve_minimizing(&objective)
}

// ---------------------------------------------------------------------
// Symmetric search
// ---------------------------------------------------------------------

/// Variable groups: distinct multiplicity values with their member
/// counts, preserving the local-variable order of `shape`.
fn groups_of(shape: &ConstraintShape) -> Vec<(u32, usize)> {
    let mut groups: Vec<(u32, usize)> = Vec::new();
    for &m in &shape.multiplicities {
        match groups.iter_mut().find(|(mu, _)| *mu == m) {
            Some((_, n)) => *n += 1,
            None => groups.push((m, 1)),
        }
    }
    groups
}

/// Unknown layout for the symmetric ansatz.
struct SymmetricLayout {
    groups: Vec<(u32, usize)>, // (multiplicity, member count)
    num_anc: usize,
    num_unknowns: usize,
}

impl SymmetricLayout {
    fn new(shape: &ConstraintShape, num_anc: usize) -> Self {
        let groups = groups_of(shape);
        let g = groups.len();
        // offset: 1
        // alpha_g: g
        // beta_gg: g        (unused rows are simply never referenced
        //                    when the group has one member)
        // beta_gh (g<h): g(g-1)/2
        // gamma_j: num_anc
        // delta_gj: g*num_anc
        // eps_jk (j<k): num_anc(num_anc-1)/2
        let num_unknowns = 1
            + g
            + g
            + g * g.saturating_sub(1) / 2
            + num_anc
            + g * num_anc
            + num_anc * num_anc.saturating_sub(1) / 2;
        SymmetricLayout { groups, num_anc, num_unknowns }
    }

    fn offset(&self) -> usize {
        0
    }
    fn alpha(&self, g: usize) -> usize {
        1 + g
    }
    fn beta_within(&self, g: usize) -> usize {
        1 + self.groups.len() + g
    }
    fn beta_across(&self, g: usize, h: usize) -> usize {
        debug_assert!(g < h);
        let n = self.groups.len();
        // index of (g, h) in the upper-triangle enumeration
        let base = 1 + 2 * n;
        base + g * n - g * (g + 1) / 2 + (h - g - 1)
    }
    fn gamma(&self, j: usize) -> usize {
        let n = self.groups.len();
        1 + 2 * n + n * (n - 1) / 2 + j
    }
    fn delta(&self, g: usize, j: usize) -> usize {
        let n = self.groups.len();
        1 + 2 * n + n * (n - 1) / 2 + self.num_anc + g * self.num_anc + j
    }
    fn eps(&self, j: usize, k: usize) -> usize {
        debug_assert!(j < k);
        let n = self.groups.len();
        let base = 1 + 2 * n + n * (n - 1) / 2 + self.num_anc + n * self.num_anc;
        base + j * self.num_anc - j * (j + 1) / 2 + (k - j - 1)
    }

    /// Energy of (count vector, ancilla bits) as a linear expression in
    /// the unknowns.
    fn energy_expr(&self, counts: &[usize], anc: u64) -> LinExpr {
        let mut e = LinExpr::var(self.offset());
        let rat = |v: usize| Rational::from(v as i64);
        for (g, &t) in counts.iter().enumerate() {
            if t > 0 {
                e.add_term(self.alpha(g), rat(t));
                if t >= 2 {
                    e.add_term(self.beta_within(g), rat(t * (t - 1) / 2));
                }
            }
        }
        for g in 0..counts.len() {
            for h in g + 1..counts.len() {
                if counts[g] > 0 && counts[h] > 0 {
                    e.add_term(self.beta_across(g, h), rat(counts[g] * counts[h]));
                }
            }
        }
        for j in 0..self.num_anc {
            if anc >> j & 1 == 1 {
                e.add_term(self.gamma(j), Rational::one());
                for (g, &t) in counts.iter().enumerate() {
                    if t > 0 {
                        e.add_term(self.delta(g, j), rat(t));
                    }
                }
                for k in j + 1..self.num_anc {
                    if anc >> k & 1 == 1 {
                        e.add_term(self.eps(j, k), Rational::one());
                    }
                }
            }
        }
        e
    }
}

/// Enumerate all count vectors `(t_g ∈ 0..=n_g)`.
fn count_vectors(groups: &[(u32, usize)]) -> Vec<Vec<usize>> {
    let mut out = vec![Vec::new()];
    for &(_, n) in groups {
        let mut next = Vec::with_capacity(out.len() * (n + 1));
        for v in &out {
            for t in 0..=n {
                let mut w = v.clone();
                w.push(t);
                next.push(w);
            }
        }
        out = next;
    }
    out
}

fn search_symmetric(
    shape: &ConstraintShape,
    num_anc: usize,
    mode: GapMode,
) -> Option<CompiledQubo> {
    let layout = SymmetricLayout::new(shape, num_anc);
    // Twice the unknowns: the upper half is the |·|-bounding aux block
    // used by the L1 polish (unconstrained unless the polish runs).
    let mut problem = DisjunctiveProblem::new(2 * layout.num_unknowns);
    let one = Rational::one();
    for counts in count_vectors(&layout.groups) {
        let weighted: u32 =
            counts.iter().zip(&layout.groups).map(|(&t, &(mu, _))| t as u32 * mu).sum();
        let satisfying = shape.selection.contains(&weighted);
        let mut witnesses = Vec::new();
        for anc in 0..1u64 << num_anc {
            let e = layout.energy_expr(&counts, anc);
            if satisfying {
                // E ≥ 0 always; some ancilla attains E = 0.
                problem.require(LinConstraint::new(e.clone(), Relation::Ge));
                witnesses.push(vec![LinConstraint::new(e, Relation::Eq)]);
            } else {
                // E − 1 ≥ 0 for every ancilla; under ExactlyOne, some
                // ancilla must attain E = 1 so the min penalty is flat.
                let mut em1 = e;
                em1.add_constant(&(-&one));
                problem.require(LinConstraint::new(em1.clone(), Relation::Ge));
                if mode == GapMode::ExactlyOne {
                    witnesses.push(vec![LinConstraint::new(em1, Relation::Eq)]);
                }
            }
        }
        if satisfying || (mode == GapMode::ExactlyOne && !witnesses.is_empty()) {
            problem.require_any(witnesses);
        }
    }
    let witness = solve_coefficients(problem, layout.num_unknowns)?;
    Some(reconstruct_symmetric(shape, &layout, &witness))
}

fn reconstruct_symmetric(
    shape: &ConstraintShape,
    layout: &SymmetricLayout,
    w: &[Rational],
) -> CompiledQubo {
    let d = shape.num_vars();
    let n = d + layout.num_anc;
    let mut q = RationalQubo::new(n);
    q.add_offset(w[layout.offset()].clone());
    // Map each local variable to its group index.
    let group_of: Vec<usize> = shape
        .multiplicities
        .iter()
        .map(|m| layout.groups.iter().position(|(mu, _)| mu == m).unwrap())
        .collect();
    for i in 0..d {
        q.add_linear(i, w[layout.alpha(group_of[i])].clone());
        for j in i + 1..d {
            let (gi, gj) = (group_of[i], group_of[j]);
            let coeff = if gi == gj {
                w[layout.beta_within(gi)].clone()
            } else {
                w[layout.beta_across(gi.min(gj), gi.max(gj))].clone()
            };
            q.add_quadratic(i, j, coeff);
        }
    }
    for j in 0..layout.num_anc {
        q.add_linear(d + j, w[layout.gamma(j)].clone());
        for i in 0..d {
            q.add_quadratic(i, d + j, w[layout.delta(group_of[i], j)].clone());
        }
        for k in j + 1..layout.num_anc {
            q.add_quadratic(d + j, d + k, w[layout.eps(j, k)].clone());
        }
    }
    CompiledQubo { qubo: q, num_real: d, num_ancillas: layout.num_anc }
}

// ---------------------------------------------------------------------
// General (asymmetric) search
// ---------------------------------------------------------------------

/// Unknown layout for the general ansatz over `n` local variables:
/// `[offset, linear 0..n, quadratic pairs (i<j)]`.
struct GeneralLayout {
    n: usize,
}

impl GeneralLayout {
    fn num_unknowns(&self) -> usize {
        1 + self.n + self.n * (self.n - 1) / 2
    }
    fn offset(&self) -> usize {
        0
    }
    fn linear(&self, i: usize) -> usize {
        1 + i
    }
    fn quad(&self, i: usize, j: usize) -> usize {
        debug_assert!(i < j);
        1 + self.n + i * self.n - i * (i + 1) / 2 + (j - i - 1)
    }

    fn energy_expr(&self, bits: u64) -> LinExpr {
        let mut e = LinExpr::var(self.offset());
        for i in 0..self.n {
            if bits >> i & 1 == 1 {
                e.add_term(self.linear(i), Rational::one());
                for j in i + 1..self.n {
                    if bits >> j & 1 == 1 {
                        e.add_term(self.quad(i, j), Rational::one());
                    }
                }
            }
        }
        e
    }
}

fn search_general(shape: &ConstraintShape, num_anc: usize, mode: GapMode) -> Option<CompiledQubo> {
    let d = shape.num_vars();
    let n = d + num_anc;
    let layout = GeneralLayout { n };
    let mut problem = DisjunctiveProblem::new(2 * layout.num_unknowns());
    let one = Rational::one();
    for var_bits in 0..1u64 << d {
        let satisfying = shape.satisfied_by(var_bits);
        let mut witnesses = Vec::new();
        for anc in 0..1u64 << num_anc {
            let e = layout.energy_expr(var_bits | anc << d);
            if satisfying {
                problem.require(LinConstraint::new(e.clone(), Relation::Ge));
                witnesses.push(vec![LinConstraint::new(e, Relation::Eq)]);
            } else {
                let mut em1 = e;
                em1.add_constant(&(-&one));
                problem.require(LinConstraint::new(em1.clone(), Relation::Ge));
                if mode == GapMode::ExactlyOne {
                    witnesses.push(vec![LinConstraint::new(em1, Relation::Eq)]);
                }
            }
        }
        if satisfying || (mode == GapMode::ExactlyOne && !witnesses.is_empty()) {
            problem.require_any(witnesses);
        }
    }
    let witness = solve_coefficients(problem, layout.num_unknowns())?;
    let mut q = RationalQubo::new(n);
    q.add_offset(witness[layout.offset()].clone());
    for i in 0..n {
        q.add_linear(i, witness[layout.linear(i)].clone());
        for j in i + 1..n {
            q.add_quadratic(i, j, witness[layout.quad(i, j)].clone());
        }
    }
    Some(CompiledQubo { qubo: q, num_real: d, num_ancillas: num_anc })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(mults: &[u32], sel: &[u32]) -> ConstraintShape {
        ConstraintShape { multiplicities: mults.to_vec(), selection: sel.iter().copied().collect() }
    }

    fn compile_ok(mults: &[u32], sel: &[u32]) -> CompiledQubo {
        let s = shape(mults, sel);
        let c = find_qubo(&s, MAX_ANCILLAS).expect("compilable");
        assert!(verify(&c, &s), "verification failed for {s:?}: {:?}", c.qubo);
        c
    }

    #[test]
    fn exactly_one_of_two() {
        // nck({a,b},{1}) — XOR-like; classic QUBO (a+b-1)^2 exists.
        let c = compile_ok(&[1, 1], &[1]);
        assert_eq!(c.num_ancillas, 0);
    }

    #[test]
    fn at_least_one_of_two() {
        // nck({a,b},{1,2}) — the vertex-cover edge constraint (§V).
        let c = compile_ok(&[1, 1], &[1, 2]);
        assert_eq!(c.num_ancillas, 0);
        // Ground-normalized version of ab − a − b: penalty 1 at 00.
        assert_eq!(c.penalty(0b00), Rational::one());
        assert_eq!(c.penalty(0b01), Rational::zero());
        assert_eq!(c.penalty(0b11), Rational::zero());
    }

    #[test]
    fn xor_of_three_needs_no_ancilla() {
        // nck({a,b,c},{0,2}) — the paper's XOR example a⊕b = c is
        // nck({a,b,c},{0,2}), which *does* need an ancilla (§VI-C).
        let s = shape(&[1, 1, 1], &[0, 2]);
        let c = find_qubo(&s, MAX_ANCILLAS).unwrap();
        assert!(verify(&c, &s));
        assert_eq!(c.num_ancillas, 1, "XOR requires exactly one ancilla");
    }

    #[test]
    fn one_or_three_of_three_needs_ancilla() {
        // nck({a,b,c},{1,3}) — §VI-B Discussion: cannot be a
        // three-variable QUBO, requires a fourth ancillary variable.
        let s = shape(&[1, 1, 1], &[1, 3]);
        let c = find_qubo(&s, MAX_ANCILLAS).unwrap();
        assert!(verify(&c, &s));
        assert_eq!(c.num_ancillas, 1);
    }

    #[test]
    fn exactly_k_closed_family() {
        for n in 1..=4usize {
            for k in 0..=n as u32 {
                let mults = vec![1; n];
                let sel = [k];
                let c = compile_ok(&mults, &sel);
                assert_eq!(c.num_ancillas, 0, "nck(n={n}, {{{k}}}) should need no ancilla");
            }
        }
    }

    #[test]
    fn full_range_selection_trivial() {
        // Selection {0,1,2} over 2 vars is always satisfied.
        let c = compile_ok(&[1, 1], &[0, 1, 2]);
        for bits in 0..4 {
            assert!(c.penalty(bits).is_zero());
        }
    }

    #[test]
    fn repeated_variable_shape() {
        // {a, a}: achievable counts 0 and 2. Selection {0,2} is always
        // satisfied; {2} forces a TRUE.
        let c = compile_ok(&[2], &[0, 2]);
        assert!(c.penalty(0).is_zero());
        assert!(c.penalty(1).is_zero());
        let c = compile_ok(&[2], &[2]);
        assert!(c.penalty(0) >= Rational::one());
        assert!(c.penalty(1).is_zero());
    }

    #[test]
    fn unsatisfiable_shape_is_error() {
        // {a, a} with selection {1}: count 1 unachievable.
        let s = shape(&[2], &[1]);
        match find_qubo(&s, MAX_ANCILLAS) {
            Err(CompileError::Unsatisfiable(_)) => {}
            other => panic!("expected Unsatisfiable, got {other:?}"),
        }
    }

    #[test]
    fn three_sat_clause_shape() {
        // 3-SAT positive clause (x ∨ y ∨ z): nck({x,y,z},{1,2,3}).
        let c = compile_ok(&[1, 1, 1], &[1, 2, 3]);
        assert!(c.penalty(0b000) >= Rational::one());
        for bits in 1..8 {
            assert!(c.penalty(bits).is_zero());
        }
    }

    #[test]
    fn sat_clause_with_doubled_variable() {
        // The paper's repeated-variable SAT encoding:
        // nck({x,y,z,z},{0,1,2,4}) for clause (x ∨ y ∨ ¬z).
        let s = shape(&[1, 1, 2], &[0, 1, 2, 4]);
        let c = find_qubo(&s, MAX_ANCILLAS).unwrap();
        assert!(verify(&c, &s));
        // violating: z TRUE, x or y adding to count 3
        assert!(c.penalty(0b101) >= Rational::one()); // x,z → count 3
        assert!(c.penalty(0b100).is_zero()); // z alone → count 2 OK
    }

    #[test]
    fn max_penalty_of_soft_minimizer() {
        // nck({v},{0}) — the soft "prefer FALSE" constraint. Max
        // penalty over assignments should be exactly the v=1 penalty.
        let c = compile_ok(&[1], &[0]);
        assert_eq!(c.max_penalty(), c.penalty(1));
        assert!(c.max_penalty() >= Rational::one());
    }

    #[test]
    fn l1_polish_small_coefficients_and_knob() {
        // Combined in one test because SOLVE_MINIMIZE is process-global
        // and tests run concurrently.
        use std::sync::atomic::Ordering;
        // The XOR table's known hand-derived coefficient profile has
        // magnitudes {1, 2, 4}; the L1 polish must not exceed that
        // scale (an unpolished witness can be much larger).
        let s = shape(&[1, 1, 1], &[0, 2]);
        let c = find_qubo(&s, MAX_ANCILLAS).unwrap();
        let max = c.qubo.to_f64().max_abs_coeff();
        assert!(max <= 4.0 + 1e-9, "polished XOR coefficient {max} too large");
        // With the knob off, the table must still verify.
        SOLVE_MINIMIZE.store(false, Ordering::SeqCst);
        let c = find_qubo(&s, MAX_ANCILLAS).unwrap();
        SOLVE_MINIMIZE.store(true, Ordering::SeqCst);
        assert!(verify(&c, &s), "unpolished table must still verify");
    }

    #[test]
    fn count_vectors_enumeration() {
        let cvs = count_vectors(&[(1, 2), (2, 1)]);
        assert_eq!(cvs.len(), 6); // (0..=2) × (0..=1)
        assert!(cvs.contains(&vec![2, 1]));
        assert!(cvs.contains(&vec![0, 0]));
    }

    #[test]
    fn shape_satisfied_by_weighted_count() {
        let s = shape(&[1, 2], &[2]);
        assert!(!s.satisfied_by(0b00)); // count 0
        assert!(!s.satisfied_by(0b01)); // count 1
        assert!(s.satisfied_by(0b10)); // count 2 (the doubled var)
        assert!(!s.satisfied_by(0b11)); // count 3
    }
}
