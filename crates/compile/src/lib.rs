//! # nck-compile
//!
//! The NchooseK-to-QUBO compiler (§V of the paper).
//!
//! Each `nck(N, K)` constraint becomes a small QUBO over its variables
//! plus (when necessary) ancillas, normalized so satisfying assignments
//! have energy 0 and violations ≥ 1. Coefficients come from a closed
//! form when one applies ([`closed`]) or otherwise from an exact
//! SMT-style search ([`search`]) — the role Z3 plays in the paper's
//! implementation. Per-constraint QUBOs are summed into a program QUBO
//! with hard constraints weighted above the worst-case total soft
//! penalty ([`compiler`]), and symmetric constraints share one compiled
//! table through a concurrent cache ([`cache`]).
//!
//! ```
//! use nck_core::Program;
//! use nck_compile::{compile, CompilerOptions};
//!
//! // Minimum vertex cover of a single edge.
//! let mut p = Program::new();
//! let a = p.new_var("a").unwrap();
//! let b = p.new_var("b").unwrap();
//! p.nck(vec![a, b], [1, 2]).unwrap();      // edge covered
//! p.nck_soft(vec![a], [0]).unwrap();       // prefer a ∉ cover
//! p.nck_soft(vec![b], [0]).unwrap();       // prefer b ∉ cover
//!
//! let compiled = compile(&p, &CompilerOptions::default()).unwrap();
//! assert_eq!(compiled.num_ancillas, 0);
//! // The two single-vertex covers are the QUBO ground states.
//! let r = nck_qubo::solve_exhaustive(&compiled.qubo);
//! assert_eq!(r.minimizers, vec![0b01, 0b10]);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod closed;
pub mod compiler;
pub mod error;
pub mod rqubo;
pub mod search;

pub use cache::QuboCache;
pub use compiler::{
    compile, compile_constraint, CompileStats, CompiledProgram, CompilerOptions,
    ConstraintPlacement,
};
pub use error::CompileError;
pub use rqubo::RationalQubo;
pub use search::{
    find_qubo, find_qubo_mode, verify, verify_mode, CompiledQubo, ConstraintShape, GapMode,
    MAX_ANCILLAS,
};
