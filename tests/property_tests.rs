//! Property-based tests over the core pipeline invariants.

use nck_compile::{compile, find_qubo, verify, CompilerOptions, ConstraintShape};
use nck_core::Program;
use nck_qubo::{solve_exhaustive, Qubo};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Strategy: a satisfiable constraint shape with ≤ 4 distinct variables
/// of multiplicity ≤ 2 and a non-empty selection of achievable counts.
fn shape_strategy() -> impl Strategy<Value = ConstraintShape> {
    (1usize..=4, any::<u64>()).prop_flat_map(|(d, bits)| {
        let mults: Vec<u32> = (0..d).map(|i| 1 + ((bits >> i) & 1) as u32).collect();
        let cardinality: u32 = mults.iter().sum();
        let mults2 = mults.clone();
        // Pick a non-empty subset of 0..=cardinality as the selection,
        // then ensure at least one achievable count is included.
        prop::collection::btree_set(0..=cardinality, 1..=(cardinality as usize + 1)).prop_map(
            move |mut selection: BTreeSet<u32>| {
                let shape = ConstraintShape {
                    multiplicities: mults2.clone(),
                    selection: selection.clone(),
                };
                if !shape.satisfiable() {
                    // Force satisfiability by including count 0.
                    selection.insert(0);
                }
                ConstraintShape { multiplicities: mults2.clone(), selection }
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every satisfiable shape compiles to a QUBO whose penalties are
    /// exactly 0 on satisfying assignments and ≥ 1 elsewhere — the
    /// compiler's core soundness contract, re-verified independently.
    #[test]
    fn compiled_constraint_qubos_are_sound(shape in shape_strategy()) {
        let compiled = find_qubo(&shape, 3).expect("satisfiable shape must compile");
        prop_assert!(verify(&compiled, &shape), "invalid table for {shape:?}");
    }

    /// QUBO ↔ Ising round trip preserves energies on every assignment.
    #[test]
    fn qubo_ising_round_trip(
        linear in prop::collection::vec(-5.0f64..5.0, 1..6),
        quad in prop::collection::vec((0usize..6, 0usize..6, -5.0f64..5.0), 0..8),
        offset in -3.0f64..3.0,
    ) {
        let n = linear.len();
        let mut q = Qubo::new(n);
        for (i, &c) in linear.iter().enumerate() {
            q.add_linear(i, c);
        }
        for &(a, b, c) in &quad {
            let (a, b) = (a % n, b % n);
            if a != b {
                q.add_quadratic(a, b, c);
            }
        }
        q.add_offset(offset);
        let round = q.to_ising().to_qubo();
        for bits in 0..1u64 << n {
            let d = (q.energy_bits(bits) - round.energy_bits(bits)).abs();
            prop_assert!(d < 1e-9, "bits {bits:b}: {d}");
        }
    }

    /// Scaling a QUBO by a positive factor never changes its minimizer
    /// set.
    #[test]
    fn positive_scaling_preserves_minimizers(
        linear in prop::collection::vec(-4.0f64..4.0, 2..6),
        k in 0.1f64..50.0,
    ) {
        let n = linear.len();
        let mut q = Qubo::new(n);
        for (i, &c) in linear.iter().enumerate() {
            q.add_linear(i, c);
            if i + 1 < n {
                q.add_quadratic(i, i + 1, c / 2.0);
            }
        }
        let before = solve_exhaustive(&q).minimizers;
        let mut scaled = q.clone();
        scaled.scale(k);
        let after = solve_exhaustive(&scaled).minimizers;
        prop_assert_eq!(before, after);
    }

    /// For random mixed programs, the branch-and-bound solver and brute
    /// force agree on the soft optimum, and the compiled QUBO's ground
    /// states project onto exactly the optimal assignments.
    #[test]
    fn solver_compiler_brute_agree(
        seed in any::<u64>(),
        n in 3usize..6,
        m in 1usize..5,
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut p = Program::new();
        let vs = p.new_vars("v", n).unwrap();
        for _ in 0..m {
            let a = vs[(next() % n as u64) as usize];
            let b = vs[(next() % n as u64) as usize];
            let mut col = vec![a, b];
            if next() % 2 == 0 {
                col.push(vs[(next() % n as u64) as usize]);
            }
            let card = col.len() as u32;
            let mut sel: Vec<u32> = (0..=card).filter(|_| next() % 2 == 0).collect();
            if sel.is_empty() {
                sel.push((next() % (card as u64 + 1)) as u32);
            }
            if next() % 3 == 0 {
                p.nck_soft(col, sel).unwrap();
            } else {
                p.nck(col, sel).unwrap();
            }
        }
        let brute = nck_classical::solve_brute(&p);
        let solved = nck_classical::max_soft_satisfiable(&p);
        match (&brute, solved) {
            (None, None) => {}
            (Some(b), Some(s)) => {
                prop_assert_eq!(b.max_soft, s);
                // Compiler agreement (skip if constraints are
                // individually unsatisfiable — the compiler rejects
                // those even when brute force can't satisfy them
                // either... here brute succeeded so all fine).
                if let Ok(compiled) = compile(&p, &CompilerOptions::default()) {
                    if compiled.num_qubo_vars() <= 16 {
                        let r = solve_exhaustive(&compiled.qubo);
                        let mask = (1u64 << n) - 1;
                        let projected: std::collections::HashSet<u64> =
                            r.minimizers.iter().map(|&x| x & mask).collect();
                        let expected: std::collections::HashSet<u64> =
                            b.optima.iter().copied().collect();
                        prop_assert_eq!(projected, expected);
                    }
                }
            }
            _ => prop_assert!(false, "solver {solved:?} vs brute {brute:?}"),
        }
    }
}
