//! Integration tests for the weighted-soft-constraint extension across
//! the whole pipeline: DSL → compiler → QUBO ground states → solvers →
//! annealer.

use nchoosek::prelude::*;
use nck_anneal::{NoiseModel, SaParams};
use nck_classical::{max_soft_satisfiable, solve_brute};
use nck_problems::{Graph, MaxCut};
use nck_qubo::solve_exhaustive;
use std::collections::HashSet;

/// Weighted preferences on a single variable: the heavier side wins.
#[test]
fn heavier_preference_wins() {
    let mut p = Program::new();
    let a = p.new_var("a").unwrap();
    p.nck_soft_weighted(vec![a], [0], 1).unwrap();
    p.nck_soft_weighted(vec![a], [1], 3).unwrap();
    assert_eq!(max_soft_satisfiable(&p), Some(3));
    let brute = solve_brute(&p).unwrap();
    assert_eq!(brute.optima, vec![0b1], "a = TRUE satisfies the weight-3 side");
}

/// A weight-w constraint behaves exactly like w copies of the unit one.
#[test]
fn weight_equals_duplication() {
    let build = |duplicated: bool| {
        let mut p = Program::new();
        let vs = p.new_vars("v", 4).unwrap();
        p.nck(vec![vs[0], vs[1], vs[2], vs[3]], [2]).unwrap();
        if duplicated {
            for _ in 0..3 {
                p.nck_soft(vec![vs[0]], [1]).unwrap();
            }
        } else {
            p.nck_soft_weighted(vec![vs[0]], [1], 3).unwrap();
        }
        p.nck_soft(vec![vs[3]], [1]).unwrap();
        p
    };
    let weighted = build(false);
    let duplicated = build(true);
    assert_eq!(max_soft_satisfiable(&weighted), max_soft_satisfiable(&duplicated));
    let a = solve_brute(&weighted).unwrap();
    let b = solve_brute(&duplicated).unwrap();
    assert_eq!(a.optima, b.optima, "same optimal assignments");
    // And the compiled QUBOs have identical ground states.
    let ca = compile(&weighted, &CompilerOptions::default()).unwrap();
    let cb = compile(&duplicated, &CompilerOptions::default()).unwrap();
    let ga: HashSet<u64> = solve_exhaustive(&ca.qubo).minimizers.into_iter().collect();
    let gb: HashSet<u64> = solve_exhaustive(&cb.qubo).minimizers.into_iter().collect();
    assert_eq!(ga, gb);
}

/// The compiled QUBO's ground states are exactly the weight-optimal
/// assignments, and the hard weight still dominates.
#[test]
fn weighted_ground_states_and_hard_dominance() {
    let mut p = Program::new();
    let vs = p.new_vars("v", 4).unwrap();
    p.nck(vec![vs[0], vs[1]], [1]).unwrap(); // exactly one of v0, v1
    p.nck_soft_weighted(vec![vs[0]], [1], 5).unwrap(); // strongly prefer v0
    p.nck_soft_weighted(vec![vs[1]], [1], 2).unwrap();
    p.nck_soft_weighted(vec![vs[2]], [0], 7).unwrap();
    p.nck_soft(vec![vs[3]], [1]).unwrap();
    let compiled = compile(&p, &CompilerOptions::default()).unwrap();
    // W must exceed the total soft weight (5 + 2 + 7 + 1 = 15).
    assert!(compiled.hard_weight > 15.0);
    let brute = solve_brute(&p).unwrap();
    let r = solve_exhaustive(&compiled.qubo);
    let mask = (1u64 << 4) - 1;
    let projected: HashSet<u64> = r.minimizers.iter().map(|&b| b & mask).collect();
    let expected: HashSet<u64> = brute.optima.iter().copied().collect();
    assert_eq!(projected, expected);
    // The unique optimum: v0 = 1 (w5 beats w2), v2 = 0, v3 = 1.
    assert_eq!(expected, HashSet::from([0b1001]));
}

/// Weighted max cut end-to-end on the simulated annealer.
#[test]
fn weighted_max_cut_on_annealer() {
    // A square with one heavy diagonal: the optimum must cut it.
    let g = Graph::new(4, [(0, 1), (1, 2), (2, 3), (0, 3), (0, 2)]);
    // edges() sorted: (0,1), (0,2), (0,3), (1,2), (2,3); (0,2) heavy.
    let mc = MaxCut::with_weights(g, vec![1, 20, 1, 1, 1]);
    let program = mc.program();
    let mut device = AnnealerDevice::advantage_4_1();
    device.noise = NoiseModel::ideal();
    device.sa = SaParams { num_sweeps: 256, ..SaParams::default() };
    let out = run_on_annealer(&program, &device, 100, 8).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert_ne!(out.assignment[0], out.assignment[2], "the weight-20 diagonal must be cut");
    assert_eq!(mc.cut_weight(&out.assignment), out.max_soft);
}
