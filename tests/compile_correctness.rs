//! Cross-crate integration: the compiler's QUBOs are semantically
//! correct for every paper problem, judged by exhaustive enumeration
//! and the classical solver.

use nck_classical::solve_brute;
use nck_compile::{compile, CompilerOptions};
use nck_core::Program;
use nck_problems::{
    CliqueCover, ExactCover, Graph, KSat, MapColoring, MaxCut, MinSetCover, MinVertexCover,
};
use nck_qubo::solve_exhaustive;
use std::collections::HashSet;

/// The QUBO minimizers, projected onto program variables, must be
/// exactly the program's optimal assignments.
fn assert_qubo_matches_program(program: &Program) {
    let compiled = compile(program, &CompilerOptions::default()).expect("compiles");
    assert!(
        compiled.num_qubo_vars() <= 24,
        "test instance too large: {} qubo vars",
        compiled.num_qubo_vars()
    );
    let brute = solve_brute(program).expect("satisfiable test instance");
    let qubo_result = solve_exhaustive(&compiled.qubo);
    let pv = compiled.num_program_vars;
    let mask = (1u64 << pv) - 1;
    let projected: HashSet<u64> = qubo_result.minimizers.iter().map(|&b| b & mask).collect();
    let expected: HashSet<u64> = brute.optima.iter().copied().collect();
    assert_eq!(
        projected, expected,
        "QUBO ground states disagree with program optima for {program}"
    );
}

#[test]
fn intro_example() {
    let mut p = Program::new();
    let a = p.new_var("a").unwrap();
    let b = p.new_var("b").unwrap();
    let c = p.new_var("c").unwrap();
    p.nck(vec![a, b], [0, 1]).unwrap();
    p.nck(vec![b, c], [1]).unwrap();
    assert_qubo_matches_program(&p);
}

#[test]
fn min_vertex_cover_instances() {
    for g in [
        Graph::new(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]),
        Graph::cycle(7),
        Graph::complete(5),
        Graph::clique_chain(3),
        Graph::random_gnm(8, 12, 1),
    ] {
        assert_qubo_matches_program(&MinVertexCover::new(g).program());
    }
}

#[test]
fn max_cut_instances() {
    for g in [Graph::cycle(6), Graph::cycle(5), Graph::complete(4), Graph::random_gnm(9, 14, 2)] {
        assert_qubo_matches_program(&MaxCut::new(g).program());
    }
}

#[test]
fn exact_cover_instance() {
    let ec = ExactCover::new(4, vec![vec![0, 1], vec![2, 3], vec![1, 2], vec![0, 1, 2], vec![3]]);
    assert_qubo_matches_program(&ec.program());
}

#[test]
fn min_set_cover_instance() {
    let msc = MinSetCover::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]);
    assert_qubo_matches_program(&msc.program());
}

#[test]
fn map_coloring_instance() {
    // Path of 3 with 2 colors: 6 variables.
    let mc = MapColoring::new(Graph::path(3), 2);
    assert_qubo_matches_program(&mc.program());
    // Triangle with 3 colors: 9 variables.
    let mc = MapColoring::new(Graph::complete(3), 3);
    assert_qubo_matches_program(&mc.program());
}

#[test]
fn clique_cover_instance() {
    // Two disjoint edges, 2 cliques: 8 variables.
    let cc = CliqueCover::new(Graph::new(4, [(0, 1), (2, 3)]), 2);
    assert_qubo_matches_program(&cc.program());
}

#[test]
fn three_sat_both_encodings() {
    let sat = KSat::random_3sat(5, 6, 3);
    assert_qubo_matches_program(&sat.program_repeated());
    // Dual rail doubles the variable count: keep it tiny.
    let small = KSat::random_3sat(4, 4, 4);
    assert_qubo_matches_program(&small.program_dual_rail());
}

/// §VI-B: "For every problem discussed in this paper with the exception
/// of the satisfaction problem and minimum set cover, the QUBO used in
/// NchooseK is the same as the handcrafted QUBO" — we verify the
/// operational form of this claim: identical ground-state sets over the
/// shared variables.
#[test]
fn generated_and_handcrafted_qubos_share_ground_states() {
    // Vertex cover.
    let mvc = MinVertexCover::new(Graph::new(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]));
    let hand = solve_exhaustive(&mvc.handcrafted_qubo());
    let compiled = compile(&mvc.program(), &CompilerOptions::default()).unwrap();
    let gen = solve_exhaustive(&compiled.qubo);
    let mask = (1u64 << 5) - 1;
    let hand_set: HashSet<u64> = hand.minimizers.iter().copied().collect();
    let gen_set: HashSet<u64> = gen.minimizers.iter().map(|&b| b & mask).collect();
    assert_eq!(hand_set, gen_set, "vertex cover ground states differ");

    // Max cut.
    let mc = MaxCut::new(Graph::cycle(5));
    let hand = solve_exhaustive(&mc.handcrafted_qubo());
    let compiled = compile(&mc.program(), &CompilerOptions::default()).unwrap();
    let gen = solve_exhaustive(&compiled.qubo);
    let hand_set: HashSet<u64> = hand.minimizers.iter().copied().collect();
    let gen_set: HashSet<u64> = gen.minimizers.iter().copied().collect();
    assert_eq!(hand_set, gen_set, "max cut ground states differ");

    // Exact cover.
    let ec = ExactCover::new(3, vec![vec![0], vec![1, 2], vec![0, 1], vec![2]]);
    let hand = solve_exhaustive(&ec.handcrafted_qubo());
    let compiled = compile(&ec.program(), &CompilerOptions::default()).unwrap();
    let gen = solve_exhaustive(&compiled.qubo);
    let hand_set: HashSet<u64> = hand.minimizers.iter().copied().collect();
    let gen_set: HashSet<u64> = gen.minimizers.iter().copied().collect();
    assert_eq!(hand_set, gen_set, "exact cover ground states differ");
}

/// The dual-rail and repeated-variable SAT encodings agree with each
/// other and with the domain-level truth.
#[test]
fn sat_encodings_agree() {
    for seed in 0..4 {
        let sat = KSat::random_3sat(6, 8, seed);
        let dual = solve_brute(&sat.program_dual_rail()).expect("planted satisfiable");
        let rep = solve_brute(&sat.program_repeated()).expect("planted satisfiable");
        let mask = (1u64 << 6) - 1;
        let dual_set: HashSet<u64> = dual.optima.iter().map(|&b| b & mask).collect();
        let rep_set: HashSet<u64> = rep.optima.iter().copied().collect();
        assert_eq!(dual_set, rep_set, "encodings disagree on seed {seed}");
        for &bits in &rep_set {
            let x: Vec<bool> = (0..6).map(|i| bits >> i & 1 == 1).collect();
            assert!(sat.is_satisfying(&x));
        }
    }
}
