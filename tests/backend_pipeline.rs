//! End-to-end backend integration: every paper problem runs through
//! the full pipeline on both simulated devices, and ideal devices
//! return optimal results on small instances.

use nchoosek::prelude::*;
use nck_anneal::{NoiseModel, SaParams};
use nck_problems::{
    CliqueCover, ExactCover, Graph, KSat, MapColoring, MaxCut, MinSetCover, MinVertexCover,
};

/// A quiet, well-converged annealer for small instances: optimality is
/// then deterministic enough to assert.
fn good_annealer() -> AnnealerDevice {
    let mut d = AnnealerDevice::advantage_4_1();
    d.noise = NoiseModel::ideal();
    d.sa = SaParams { num_sweeps: 512, ..SaParams::default() };
    d
}

#[test]
fn vertex_cover_on_annealer() {
    let problem = MinVertexCover::new(Graph::new(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]));
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 1).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_cover(&out.assignment));
    assert_eq!(problem.cover_size(&out.assignment), 3);
}

#[test]
fn max_cut_on_annealer() {
    let problem = MaxCut::new(Graph::cycle(8));
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 2).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert_eq!(problem.cut_size(&out.assignment), 8);
}

#[test]
fn exact_cover_on_annealer() {
    let problem = ExactCover::random(8, 4, 11);
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 3).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_exact_cover(&out.assignment));
}

#[test]
fn min_set_cover_on_annealer() {
    let problem = MinSetCover::new(5, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![0, 4]]);
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 4).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_cover(&out.assignment));
}

#[test]
fn map_coloring_on_annealer() {
    let problem = MapColoring::new(Graph::cycle(5), 3);
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 5).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_valid_coloring(&out.assignment));
}

#[test]
fn clique_cover_on_annealer() {
    let g = Graph::new(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]);
    let problem = CliqueCover::new(g, 2);
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 6).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_valid_cover(&out.assignment));
}

#[test]
fn three_sat_on_annealer() {
    let sat = KSat::random_3sat(7, 10, 7);
    let out = run_on_annealer(&sat.program_repeated(), &good_annealer(), 100, 7).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(sat.is_satisfying(&out.assignment[..7]));
}

#[test]
fn vertex_cover_on_gate_model() {
    let problem = MinVertexCover::new(Graph::new(4, [(0, 1), (1, 2), (2, 3)]));
    let device = GateModelDevice::ideal(8);
    let out = run_on_gate_model(&problem.program(), &device, 1, 2048, 60, 8).unwrap();
    assert!(out.quality.is_correct(), "got {}", out.quality);
    assert!(problem.is_cover(&out.assignment));
}

#[test]
fn max_cut_on_gate_model() {
    let problem = MaxCut::new(Graph::cycle(6));
    let device = GateModelDevice::ideal(6);
    let out = run_on_gate_model(&problem.program(), &device, 1, 2048, 60, 9).unwrap();
    // p=1 QAOA with enough shots on an even cycle finds the bipartition.
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert_eq!(problem.cut_size(&out.assignment), 6);
}

/// The mixed-problem effect the paper highlights: the hard weight is
/// strictly larger than the total possible soft penalty, so any
/// correct (all-hard) sample beats any incorrect one on energy.
#[test]
fn hard_violations_always_cost_more_than_soft() {
    let problem = MinVertexCover::new(Graph::cycle(5));
    let program = problem.program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let q = &compiled.qubo;
    let n = program.num_vars();
    let mut worst_correct = f64::NEG_INFINITY;
    let mut best_incorrect = f64::INFINITY;
    for bits in 0..1u64 << n {
        let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let e = q.energy(&x);
        if program.all_hard_satisfied(&x) {
            worst_correct = worst_correct.max(e);
        } else {
            best_incorrect = best_incorrect.min(e);
        }
    }
    assert!(
        best_incorrect > worst_correct,
        "a hard violation ({best_incorrect}) must cost more than any all-hard assignment ({worst_correct})"
    );
}

/// Chain overhead appears on the Advantage-scale device for densely
/// coupled programs: physical qubits exceed logical variables.
#[test]
fn physical_qubits_exceed_variables_on_dense_problem() {
    let problem = MapColoring::new(Graph::complete(5), 3);
    let program = problem.program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let device = AnnealerDevice::advantage_4_1();
    let result = device.sample_qubo(&compiled.qubo, 10, 10).unwrap();
    assert!(
        result.physical_qubits > compiled.num_qubo_vars(),
        "expected chains: {} physical for {} logical",
        result.physical_qubits,
        compiled.num_qubo_vars()
    );
}
