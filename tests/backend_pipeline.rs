//! End-to-end backend integration: every paper problem runs through
//! the full pipeline on both simulated devices, and ideal devices
//! return optimal results on small instances.

use nchoosek::prelude::*;
use nck_anneal::{NoiseModel, SaParams};
use nck_problems::{
    CliqueCover, ExactCover, Graph, KSat, MapColoring, MaxCut, MinSetCover, MinVertexCover,
};

/// A quiet, well-converged annealer for small instances: optimality is
/// then deterministic enough to assert.
fn good_annealer() -> AnnealerDevice {
    let mut d = AnnealerDevice::advantage_4_1();
    d.noise = NoiseModel::ideal();
    d.sa = SaParams { num_sweeps: 512, ..SaParams::default() };
    d
}

#[test]
fn vertex_cover_on_annealer() {
    let problem = MinVertexCover::new(Graph::new(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]));
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 1).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_cover(&out.assignment));
    assert_eq!(problem.cover_size(&out.assignment), 3);
}

#[test]
fn max_cut_on_annealer() {
    let problem = MaxCut::new(Graph::cycle(8));
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 2).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert_eq!(problem.cut_size(&out.assignment), 8);
}

#[test]
fn exact_cover_on_annealer() {
    let problem = ExactCover::random(8, 4, 11);
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 3).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_exact_cover(&out.assignment));
}

#[test]
fn min_set_cover_on_annealer() {
    let problem =
        MinSetCover::new(5, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![3, 4], vec![0, 4]]);
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 4).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_cover(&out.assignment));
}

#[test]
fn map_coloring_on_annealer() {
    let problem = MapColoring::new(Graph::cycle(5), 3);
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 5).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_valid_coloring(&out.assignment));
}

#[test]
fn clique_cover_on_annealer() {
    let g = Graph::new(6, [(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5)]);
    let problem = CliqueCover::new(g, 2);
    let out = run_on_annealer(&problem.program(), &good_annealer(), 100, 6).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(problem.is_valid_cover(&out.assignment));
}

#[test]
fn three_sat_on_annealer() {
    let sat = KSat::random_3sat(7, 10, 7);
    let out = run_on_annealer(&sat.program_repeated(), &good_annealer(), 100, 7).unwrap();
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert!(sat.is_satisfying(&out.assignment[..7]));
}

#[test]
fn vertex_cover_on_gate_model() {
    let problem = MinVertexCover::new(Graph::new(4, [(0, 1), (1, 2), (2, 3)]));
    let device = GateModelDevice::ideal(8);
    let out = run_on_gate_model(&problem.program(), &device, 1, 2048, 60, 8).unwrap();
    assert!(out.quality.is_correct(), "got {}", out.quality);
    assert!(problem.is_cover(&out.assignment));
}

#[test]
fn max_cut_on_gate_model() {
    let problem = MaxCut::new(Graph::cycle(6));
    let device = GateModelDevice::ideal(6);
    let out = run_on_gate_model(&problem.program(), &device, 1, 2048, 60, 9).unwrap();
    // p=1 QAOA with enough shots on an even cycle finds the bipartition.
    assert_eq!(out.quality, SolutionQuality::Optimal);
    assert_eq!(problem.cut_size(&out.assignment), 6);
}

/// The mixed-problem effect the paper highlights: the hard weight is
/// strictly larger than the total possible soft penalty, so any
/// correct (all-hard) sample beats any incorrect one on energy.
#[test]
fn hard_violations_always_cost_more_than_soft() {
    let problem = MinVertexCover::new(Graph::cycle(5));
    let program = problem.program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let q = &compiled.qubo;
    let n = program.num_vars();
    let mut worst_correct = f64::NEG_INFINITY;
    let mut best_incorrect = f64::INFINITY;
    for bits in 0..1u64 << n {
        let x: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
        let e = q.energy(&x);
        if program.all_hard_satisfied(&x) {
            worst_correct = worst_correct.max(e);
        } else {
            best_incorrect = best_incorrect.min(e);
        }
    }
    assert!(
        best_incorrect > worst_correct,
        "a hard violation ({best_incorrect}) must cost more than any all-hard assignment ({worst_correct})"
    );
}

/// The paper's intro example (§II): hard-only, so every backend —
/// including Grover — can run it.
fn intro_program() -> Program {
    let mut p = Program::new();
    let a = p.new_var("a").unwrap();
    let b = p.new_var("b").unwrap();
    let c = p.new_var("c").unwrap();
    p.nck(vec![a, b], [0, 1]).unwrap();
    p.nck(vec![b, c], [1]).unwrap();
    p
}

/// All four solver paths are reachable through the one `Backend`
/// trait, and a multi-backend fan-out compiles exactly once.
#[test]
fn all_four_backends_through_the_trait() {
    let p = intro_program();
    let plan = ExecutionPlan::new(&p);
    let annealer = AnnealerBackend::new(AnnealerDevice::ideal(8), 50);
    let gate = GateModelBackend::new(GateModelDevice::ideal(4), 1, 1024, 30);
    let grover = GroverBackend::default();
    let classical = ClassicalBackend::default();
    let backends: [&dyn Backend; 4] = [&annealer, &gate, &grover, &classical];
    for (backend, result) in backends.iter().zip(plan.run_each(&backends, 17)) {
        let report = result.unwrap();
        assert_eq!(report.backend, backend.name());
        assert_eq!(report.quality, SolutionQuality::Optimal, "{}", backend.name());
        assert!(p.all_hard_satisfied(&report.assignment), "{}", backend.name());
    }
    let stats = plan.stats();
    assert_eq!(stats.compiles, 1, "one compile serves all four backends");
    assert_eq!(stats.compile_cache_hits, 3);
}

/// A multi-seed annealer sweep compiles exactly once and re-embeds
/// only on the first seed.
#[test]
fn multi_seed_sweep_hits_the_compile_cache() {
    let problem = MinVertexCover::new(Graph::cycle(5));
    let program = problem.program();
    let plan = ExecutionPlan::new(&program);
    let backend = AnnealerBackend::new(good_annealer(), 50);
    let reports = plan.run_seeds(&backend, &[1, 2, 3, 4]).unwrap();
    assert_eq!(reports.len(), 4);
    assert!(!reports[0].timings.compile_cache_hit);
    for r in &reports[1..] {
        assert!(r.timings.compile_cache_hit, "later seeds must reuse the compile");
        assert!(r.timings.embed_cache_hit, "later seeds must reuse the embedding");
    }
    let stats = plan.stats();
    assert_eq!(stats.compiles, 1, "the sweep must compile exactly once");
    assert_eq!(stats.compile_cache_hits, 3);
    assert_eq!(stats.oracle_builds, 1, "one classical solve classifies every seed");
}

/// Grover is hard-only: soft constraints are a typed error, not a
/// panic.
#[test]
fn grover_rejects_soft_constraints() {
    let problem = MinVertexCover::new(Graph::cycle(5));
    let program = problem.program();
    let plan = ExecutionPlan::new(&program);
    match plan.run(&GroverBackend::default(), 1) {
        Err(ExecError::SoftUnsupported { num_soft }) => assert_eq!(num_soft, 5),
        other => panic!("expected SoftUnsupported, got {other:?}"),
    }
}

/// Programs beyond the state-vector oracle are a typed error, not a
/// panic.
#[test]
fn grover_rejects_oversized_programs() {
    let mut p = Program::new();
    let vs = p.new_vars("x", 21).unwrap();
    p.nck(vec![vs[0], vs[1]], [1]).unwrap();
    let plan = ExecutionPlan::new(&p);
    match plan.run(&GroverBackend::default(), 1) {
        Err(ExecError::TooLarge { vars, limit }) => {
            assert_eq!(vars, 21);
            assert_eq!(limit, 20);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
}

/// A completed classical run proves the optimum, so the plan never
/// needs a second classical solve to classify later runs.
#[test]
fn classical_run_seeds_the_oracle() {
    let problem = MinVertexCover::new(Graph::cycle(5));
    let program = problem.program();
    let plan = ExecutionPlan::new(&program);
    let report = plan.run(&ClassicalBackend::default(), 0).unwrap();
    assert_eq!(report.quality, SolutionQuality::Optimal);
    assert_eq!(plan.stats().oracle_builds, 0, "the proven optimum seeds the oracle");
    let backend = AnnealerBackend::new(good_annealer(), 50);
    let quantum = plan.run(&backend, 1).unwrap();
    assert_eq!(quantum.quality, SolutionQuality::Optimal);
    assert_eq!(plan.stats().oracle_builds, 0);
}

/// A p>1 request beyond the exact simulator falls back to the analytic
/// p=1 evaluator (recorded in the stage counters); with the fallback
/// disabled the same request is a typed error.
#[test]
fn gate_model_falls_back_to_analytic_p1() {
    // 21 QUBO variables exceed the 20-qubit exact state vector. The
    // max cut of a k-clique chain is 4k−2 (2 per triangle, 2 per
    // junction), so the oracle is seeded without a classical solve.
    let problem = MaxCut::new(Graph::clique_chain(7));
    let program = problem.program();
    let plan = ExecutionPlan::new(&program).with_oracle(OptimalityOracle { max_soft: Some(26) });
    let mut backend = GateModelBackend::new(GateModelDevice::ibmq_brooklyn(), 2, 256, 5);
    let report = plan.run(&backend, 3).unwrap();
    assert!(report.timings.fallbacks >= 1, "p=2 must fall back to analytic p=1");
    backend.analytic_fallback = false;
    assert!(matches!(plan.run(&backend, 3), Err(ExecError::Qaoa(_))));
}

/// Chain overhead appears on the Advantage-scale device for densely
/// coupled programs: physical qubits exceed logical variables.
#[test]
fn physical_qubits_exceed_variables_on_dense_problem() {
    let problem = MapColoring::new(Graph::complete(5), 3);
    let program = problem.program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let device = AnnealerDevice::advantage_4_1();
    let result = device.sample_qubo(&compiled.qubo, 10, 10).unwrap();
    assert!(
        result.physical_qubits > compiled.num_qubo_vars(),
        "expected chains: {} physical for {} logical",
        result.physical_qubits,
        compiled.num_qubo_vars()
    );
}
