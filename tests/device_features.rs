//! Integration tests for the Ocean-style device features added on top
//! of the base pipeline: gauge averaging, sample post-processing,
//! embedding reuse, tabu search, and the Grover backend.

use nchoosek::prelude::*;
use nck_anneal::{find_embedding, NoiseModel, SaParams};
use nck_classical::{tabu_search, TabuOptions};
use nck_problems::{Graph, MaxCut, MinVertexCover};

fn mvc_program() -> (MinVertexCover, nck_core::Program) {
    let p = MinVertexCover::new(Graph::clique_chain(3));
    let program = p.program();
    (p, program)
}

#[test]
fn gauge_averaging_preserves_solution_quality() {
    let (_, program) = mvc_program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let mut device = AnnealerDevice::advantage_4_1();
    device.noise = NoiseModel::ideal();
    device.sa = SaParams { num_sweeps: 256, ..SaParams::default() };
    device.num_gauges = 4;
    let r = device.sample_qubo(&compiled.qubo, 100, 3).unwrap();
    assert_eq!(r.samples.len(), 100);
    // The gauged-and-decoded best sample must be a true minimum-energy
    // assignment of the *logical* problem.
    let oracle = OptimalityOracle::build(&program);
    let best = compiled.program_assignment(&r.best().assignment);
    assert_eq!(
        oracle.classify(&program, best),
        SolutionQuality::Optimal,
        "gauge decode corrupted the sample"
    );
}

#[test]
fn postprocessing_never_hurts_energy() {
    let (_, program) = mvc_program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let raw = {
        let mut d = AnnealerDevice::advantage_4_1();
        d.sa = SaParams { num_sweeps: 4, beta_min: 0.1, beta_max: 1.0 }; // deliberately bad
        d.sample_qubo(&compiled.qubo, 50, 9).unwrap()
    };
    let polished = {
        let mut d = AnnealerDevice::advantage_4_1();
        d.sa = SaParams { num_sweeps: 4, beta_min: 0.1, beta_max: 1.0 };
        d.postprocess = true;
        d.sample_qubo(&compiled.qubo, 50, 9).unwrap()
    };
    assert!(
        polished.best().energy <= raw.best().energy + 1e-9,
        "polish made the best sample worse: {} vs {}",
        polished.best().energy,
        raw.best().energy
    );
}

#[test]
fn embedding_reuse_matches_fresh_embedding() {
    let (_, program) = mvc_program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let device = AnnealerDevice::advantage_4_1();
    let adj = compiled.qubo.adjacency();
    let embedding = find_embedding(&adj, &device.topology, 7, 5).expect("embeds");
    let a = device.sample_qubo_embedded(&compiled.qubo, &embedding, 30, 11).unwrap();
    let b = device.sample_qubo_embedded(&compiled.qubo, &embedding, 30, 11).unwrap();
    assert_eq!(a.physical_qubits, b.physical_qubits);
    assert_eq!(a.best().energy, b.best().energy, "reuse must be deterministic");
}

#[test]
fn tabu_matches_annealer_on_compiled_program() {
    let problem = MaxCut::new(Graph::random_gnm(12, 20, 3));
    let program = problem.program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let truth = nck_qubo::solve_exhaustive(&compiled.qubo);
    let tabu = tabu_search(&compiled.qubo, &TabuOptions::default(), 5);
    assert!(
        (tabu.energy - truth.min_energy).abs() < 1e-9,
        "tabu {} vs optimum {}",
        tabu.energy,
        truth.min_energy
    );
}

#[test]
fn grover_backend_solves_paper_intro() {
    let mut p = Program::new();
    let a = p.new_var("a").unwrap();
    let b = p.new_var("b").unwrap();
    let c = p.new_var("c").unwrap();
    p.nck(vec![a, b], [0, 1]).unwrap();
    p.nck(vec![b, c], [1]).unwrap();
    let out = run_on_grover(&p, 13).unwrap();
    assert!(p.all_hard_satisfied(&out.assignment));
    assert_eq!(out.quality, SolutionQuality::Optimal);
}

#[test]
fn qasm_export_of_transpiled_qaoa() {
    use nck_circuit::{qaoa_circuit, to_qasm, transpile, CouplingMap};
    let (_, program) = mvc_program();
    let compiled = compile(&program, &CompilerOptions::default()).unwrap();
    let circuit = qaoa_circuit(&compiled.qubo.to_ising(), &[0.4], &[0.6]);
    let routed = transpile(&circuit, &CouplingMap::ibmq_brooklyn()).unwrap();
    let qasm = to_qasm(&routed.circuit);
    assert!(qasm.starts_with("OPENQASM 2.0;"));
    // Routed output is in the basis set only.
    for line in qasm.lines().skip(2) {
        if line.starts_with("qreg") || line.starts_with("creg") || line.starts_with("measure") {
            continue;
        }
        assert!(
            line.starts_with("rz")
                || line.starts_with("rx")
                || line.starts_with("cx")
                || line.starts_with('x'),
            "unexpected gate line: {line}"
        );
    }
}
