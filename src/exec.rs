//! High-level execution: compile an NchooseK program and run it on a
//! backend, decoding and classifying the results.
//!
//! This is the porcelain most users want — the equivalent of the
//! Python NchooseK `solve(env, solver=...)` entry point. It wires
//! together the compiler (`nck-compile`), the backends (`nck-anneal`,
//! `nck-circuit`), and the classical oracle (`nck-classical`).

use nck_anneal::{AnnealError, AnnealerDevice};
use nck_circuit::{GateModelDevice, QaoaError};
use nck_classical::{solve as classical_solve, OptimalityOracle, SolveOutcome, SolverOptions};
use nck_compile::{compile, CompileError, CompiledProgram, CompilerOptions};
use nck_core::{Program, SolutionQuality};
use std::fmt;

/// Errors from end-to-end execution.
#[derive(Debug)]
pub enum ExecError {
    /// Compilation to QUBO failed.
    Compile(CompileError),
    /// The annealing backend failed.
    Anneal(AnnealError),
    /// The gate-model backend failed.
    Qaoa(QaoaError),
    /// The program's hard constraints are unsatisfiable.
    Unsatisfiable,
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Compile(e) => write!(f, "compile error: {e}"),
            ExecError::Anneal(e) => write!(f, "annealer error: {e}"),
            ExecError::Qaoa(e) => write!(f, "gate-model error: {e}"),
            ExecError::Unsatisfiable => write!(f, "hard constraints are unsatisfiable"),
        }
    }
}

impl std::error::Error for ExecError {}

impl From<CompileError> for ExecError {
    fn from(e: CompileError) -> Self {
        ExecError::Compile(e)
    }
}
impl From<AnnealError> for ExecError {
    fn from(e: AnnealError) -> Self {
        ExecError::Anneal(e)
    }
}
impl From<QaoaError> for ExecError {
    fn from(e: QaoaError) -> Self {
        ExecError::Qaoa(e)
    }
}

/// The outcome of running a program on a quantum backend.
#[derive(Clone, Debug)]
pub struct ExecOutcome {
    /// Best assignment over the program variables.
    pub assignment: Vec<bool>,
    /// Its quality per Definition 8, judged against the classical
    /// optimum.
    pub quality: SolutionQuality,
    /// Soft constraints satisfied by `assignment` (count).
    pub soft_satisfied: usize,
    /// The classical soft optimum, as a satisfied *weight* (equal to a
    /// count when all weights are 1).
    pub max_soft: u64,
    /// The compiled program (QUBO size, ancillas, weights, stats).
    pub compiled: CompiledProgram,
}

/// Solve on the simulated D-Wave annealer: one job of `num_reads`
/// samples, best sample reported (the paper's §VII protocol).
pub fn run_on_annealer(
    program: &Program,
    device: &AnnealerDevice,
    num_reads: usize,
    seed: u64,
) -> Result<ExecOutcome, ExecError> {
    let compiled = compile(program, &CompilerOptions::default())?;
    let result = device.sample_qubo(&compiled.qubo, num_reads, seed)?;
    let oracle = OptimalityOracle::build(program);
    let max_soft = oracle.max_soft.ok_or(ExecError::Unsatisfiable)?;
    // Pick the best sample by quality, then by soft count.
    let mut best: Option<(SolutionQuality, u64, Vec<bool>)> = None;
    for s in &result.samples {
        let assignment = compiled.program_assignment(&s.assignment).to_vec();
        let quality = oracle.classify(program, &assignment);
        let soft = program.evaluate(&assignment).soft_weight_satisfied;
        if best
            .as_ref()
            .is_none_or(|(q, sf, _)| (quality, soft) > (*q, *sf))
        {
            best = Some((quality, soft, assignment));
        }
    }
    let (quality, _, assignment) = best.expect("at least one sample");
    let soft_satisfied = program.evaluate(&assignment).soft_satisfied;
    Ok(ExecOutcome { assignment, quality, soft_satisfied, max_soft, compiled })
}

/// Solve on the simulated gate-model device via QAOA (single returned
/// result, as in §VIII-B).
pub fn run_on_gate_model(
    program: &Program,
    device: &GateModelDevice,
    layers: usize,
    shots: usize,
    max_iter: usize,
    seed: u64,
) -> Result<ExecOutcome, ExecError> {
    let compiled = compile(program, &CompilerOptions::default())?;
    let run = device.run_qaoa(&compiled.qubo, layers, shots, max_iter, seed)?;
    let oracle = OptimalityOracle::build(program);
    let max_soft = oracle.max_soft.ok_or(ExecError::Unsatisfiable)?;
    let assignment = compiled.program_assignment(&run.best_assignment).to_vec();
    let quality = oracle.classify(program, &assignment);
    let soft_satisfied = program.evaluate(&assignment).soft_satisfied;
    Ok(ExecOutcome { assignment, quality, soft_satisfied, max_soft, compiled })
}

/// Solve a *hard-only* program by Grover search on the simulated gate
/// model — the lineage of the original NchooseK abstraction (§I cites
/// its first use in a Grover search). Uses the BBHT schedule for an
/// unknown solution count: exponentially growing iteration guesses,
/// each measured once and checked classically.
///
/// Limited to ≤ 20 variables (state-vector oracle) and programs with
/// no soft constraints (Grover amplifies *satisfying* assignments; it
/// has no notion of soft-count optimality).
pub fn run_on_grover(program: &Program, seed: u64) -> Result<ExecOutcome, ExecError> {
    use nck_circuit::grover_search;
    assert!(
        program.num_soft() == 0,
        "Grover backend supports hard-only programs"
    );
    let n = program.num_vars();
    assert!(n <= 20, "Grover simulation limited to 20 variables");
    let compiled = compile(program, &CompilerOptions::default())?;
    let predicate = |bits: u64| {
        let x: Vec<bool> = (0..n).map(|q| bits >> q & 1 == 1).collect();
        program.all_hard_satisfied(&x)
    };
    // BBHT: try m = ⌈1.2^j⌉ iterations, j = 0, 1, …; measure once per
    // guess. Expected O(√(N/M)) total oracle calls.
    let mut m = 1.0f64;
    let mut found: Option<Vec<bool>> = None;
    for j in 0..64 {
        let iters = m.ceil() as usize;
        let r = grover_search(n, predicate, iters, seed ^ j);
        if r.satisfying {
            found = Some(r.assignment);
            break;
        }
        m = (m * 1.3).min((1u64 << n) as f64);
    }
    let assignment = found.ok_or(ExecError::Unsatisfiable)?;
    let oracle = OptimalityOracle::build(program);
    let max_soft = oracle.max_soft.ok_or(ExecError::Unsatisfiable)?;
    let quality = oracle.classify(program, &assignment);
    let soft_satisfied = program.evaluate(&assignment).soft_satisfied;
    Ok(ExecOutcome { assignment, quality, soft_satisfied, max_soft, compiled })
}

/// Solve classically (the Z3-role baseline): exact branch and bound.
pub fn run_classically(program: &Program) -> Result<(Vec<bool>, usize), ExecError> {
    match classical_solve(program, &SolverOptions::default()).0 {
        SolveOutcome::Solved { assignment, soft_satisfied, .. } => Ok((assignment, soft_satisfied)),
        SolveOutcome::Unsatisfiable => Err(ExecError::Unsatisfiable),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vertex_cover() -> Program {
        let mut p = Program::new();
        let vs = p.new_vars("v", 5).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        p
    }

    #[test]
    fn annealer_end_to_end_optimal() {
        let p = vertex_cover();
        let device = AnnealerDevice::ideal(16);
        let out = run_on_annealer(&p, &device, 50, 3).unwrap();
        assert_eq!(out.quality, SolutionQuality::Optimal);
        assert_eq!(out.max_soft, 2);
        assert_eq!(out.assignment.iter().filter(|&&b| b).count(), 3);
    }

    #[test]
    fn gate_model_end_to_end_optimal() {
        let p = vertex_cover();
        let device = GateModelDevice::ideal(8);
        let out = run_on_gate_model(&p, &device, 1, 1024, 60, 3).unwrap();
        assert!(out.quality >= SolutionQuality::Suboptimal);
    }

    #[test]
    fn classical_end_to_end() {
        let p = vertex_cover();
        let (assignment, soft) = run_classically(&p).unwrap();
        assert_eq!(soft, 2);
        assert!(p.all_hard_satisfied(&assignment));
    }

    #[test]
    fn grover_solves_hard_only_program() {
        // The intro example: 3 solutions among 8 assignments.
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        let c = p.new_var("c").unwrap();
        p.nck(vec![a, b], [0, 1]).unwrap();
        p.nck(vec![b, c], [1]).unwrap();
        let out = run_on_grover(&p, 9).unwrap();
        assert_eq!(out.quality, SolutionQuality::Optimal);
        assert!(p.all_hard_satisfied(&out.assignment));
    }

    #[test]
    fn grover_map_coloring() {
        use nck_problems::{Graph, MapColoring};
        let problem = MapColoring::new(Graph::cycle(4), 2);
        let out = run_on_grover(&problem.program(), 4).unwrap();
        assert!(problem.is_valid_coloring(&out.assignment));
    }

    #[test]
    fn unsatisfiable_reported() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a], [0]).unwrap();
        p.nck(vec![a], [1]).unwrap();
        assert!(matches!(run_classically(&p), Err(ExecError::Unsatisfiable)));
    }
}
