//! High-level execution: compile an NchooseK program and run it on a
//! backend, decoding and classifying the results.
//!
//! This is the porcelain most users want — the equivalent of the
//! Python NchooseK `solve(env, solver=...)` entry point. The machinery
//! lives in [`nck_exec`]: a [`Backend`] trait over all four solver
//! paths, an [`ExecutionPlan`] that compiles once and fans out to any
//! backend or seed sweep, per-stage [`StageTimings`], and typed
//! [`ExecError`] failures. The original free functions remain as thin
//! wrappers.

pub use nck_exec::{
    run_classically, run_on_annealer, run_on_gate_model, run_on_grover, AnnealerBackend, Backend,
    BackendMetrics, Candidates, ClassicalBackend, ExecError, ExecOutcome, ExecReport,
    ExecutionPlan, GateModelBackend, GroverBackend, PlanStats, Prepared, RetryPolicy, RunBudget,
    RunJournal, StageOutcome, StageTimings, SupervisedFailure, Supervisor, Tally, BBHT_GROWTH,
    PACKED_SAMPLER_LIMIT,
};

#[cfg(test)]
mod tests {
    use super::*;
    use nck_anneal::AnnealerDevice;
    use nck_circuit::GateModelDevice;
    use nck_core::{Program, SolutionQuality};

    fn vertex_cover() -> Program {
        let mut p = Program::new();
        let vs = p.new_vars("v", 5).unwrap();
        for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
            p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap();
        }
        for &v in &vs {
            p.nck_soft(vec![v], [0]).unwrap();
        }
        p
    }

    #[test]
    fn annealer_end_to_end_optimal() {
        let p = vertex_cover();
        let device = AnnealerDevice::ideal(16);
        let out = run_on_annealer(&p, &device, 50, 3).unwrap();
        assert_eq!(out.quality, SolutionQuality::Optimal);
        assert_eq!(out.max_soft, 2);
        assert_eq!(out.assignment.iter().filter(|&&b| b).count(), 3);
    }

    #[test]
    fn gate_model_end_to_end_optimal() {
        let p = vertex_cover();
        let device = GateModelDevice::ideal(8);
        let out = run_on_gate_model(&p, &device, 1, 1024, 60, 3).unwrap();
        assert!(out.quality >= SolutionQuality::Suboptimal);
    }

    #[test]
    fn classical_end_to_end() {
        let p = vertex_cover();
        let (assignment, soft) = run_classically(&p).unwrap();
        assert_eq!(soft, 2);
        assert!(p.all_hard_satisfied(&assignment));
    }

    #[test]
    fn grover_solves_hard_only_program() {
        // The intro example: 3 solutions among 8 assignments.
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        let b = p.new_var("b").unwrap();
        let c = p.new_var("c").unwrap();
        p.nck(vec![a, b], [0, 1]).unwrap();
        p.nck(vec![b, c], [1]).unwrap();
        let out = run_on_grover(&p, 9).unwrap();
        assert_eq!(out.quality, SolutionQuality::Optimal);
        assert!(p.all_hard_satisfied(&out.assignment));
    }

    #[test]
    fn grover_map_coloring() {
        use nck_problems::{Graph, MapColoring};
        let problem = MapColoring::new(Graph::cycle(4), 2);
        let out = run_on_grover(&problem.program(), 4).unwrap();
        assert!(problem.is_valid_coloring(&out.assignment));
    }

    #[test]
    fn unsatisfiable_reported() {
        let mut p = Program::new();
        let a = p.new_var("a").unwrap();
        p.nck(vec![a], [0]).unwrap();
        p.nck(vec![a], [1]).unwrap();
        assert!(matches!(run_classically(&p), Err(ExecError::Unsatisfiable)));
    }
}
