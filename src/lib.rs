//! # nchoosek
//!
//! A Rust implementation of **NchooseK with hard and soft constraints**
//! — the constraint-satisfaction system of Wilson, Mueller & Pakin,
//! *"Combining Hard and Soft Constraints in Quantum
//! Constraint-Satisfaction Systems"* (SC22) — together with simulated
//! quantum backends standing in for the paper's D-Wave Advantage 4.1
//! and IBM Q ibmq_brooklyn hardware.
//!
//! A constraint `nck(N, K)` holds iff the number of TRUE variables in
//! the collection `N` is an element of the selection set `K`. Hard
//! constraints must hold; soft constraints are maximized. Programs
//! compile to a QUBO (coefficients found by an exact SMT-style search)
//! and run on either backend, or classically.
//!
//! ```
//! use nchoosek::prelude::*;
//!
//! // Minimum vertex cover of the paper's Fig. 2 graph.
//! let mut p = Program::new();
//! let vs = p.new_vars("v", 5).unwrap();
//! for (u, w) in [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)] {
//!     p.nck(vec![vs[u], vs[w]], [1, 2]).unwrap(); // edge covered
//! }
//! for &v in &vs {
//!     p.nck_soft(vec![v], [0]).unwrap(); // minimize the cover
//! }
//!
//! let device = AnnealerDevice::ideal(16);
//! let out = run_on_annealer(&p, &device, 100, 42).unwrap();
//! assert_eq!(out.quality, SolutionQuality::Optimal);
//! assert_eq!(out.assignment.iter().filter(|&&b| b).count(), 3);
//! ```
//!
//! Crate map: [`nck_core`] (the DSL) → [`nck_compile`] (QUBO compiler,
//! with [`nck_smt`] as its exact-arithmetic solver and [`nck_qubo`] as
//! the IR) → [`nck_anneal`] / [`nck_circuit`] (backends) and
//! [`nck_classical`] (exact baseline + optimality oracle) →
//! [`nck_exec`] (the unified `Backend` trait + `ExecutionPlan`
//! execution layer), with [`nck_problems`] providing the paper's seven
//! benchmark problems.

#![warn(missing_docs)]

pub mod cli;
pub mod exec;

pub use nck_anneal;
pub use nck_circuit;
pub use nck_classical;
pub use nck_compile;
pub use nck_core;
pub use nck_exec;
pub use nck_problems;
pub use nck_qubo;
pub use nck_smt;

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::exec::{
        run_classically, run_on_annealer, run_on_gate_model, run_on_grover, AnnealerBackend,
        Backend, BackendMetrics, ClassicalBackend, ExecError, ExecOutcome, ExecReport,
        ExecutionPlan, GateModelBackend, GroverBackend, RetryPolicy, RunBudget, StageTimings,
        SupervisedFailure, Supervisor,
    };
    pub use nck_anneal::AnnealerDevice;
    pub use nck_circuit::GateModelDevice;
    pub use nck_classical::OptimalityOracle;
    pub use nck_compile::{compile, CompilerOptions};
    pub use nck_core::{Program, SolutionQuality, Var};
    pub use nck_qubo::{Ising, Qubo};
}
