//! `nchoosek` command-line driver: solve a `.nck` program on a chosen
//! backend (selected uniformly through the [`Backend`] trait) or on a
//! supervised degradation ladder with deadlines, retries, and circuit
//! breakers.
//!
//! ```text
//! nchoosek <file.nck> [--backend annealer|gate|classical|grover]
//!                     [--seed N] [--reads N] [--qubo] [--stages]
//!                     [--ladder a,b,c] [--deadline-ms N]
//!                     [--max-attempts N] [--journal]
//!                     [--run-dir DIR] [--resume]
//! ```
//!
//! `--ladder`, `--deadline-ms`, or `--max-attempts` switch the run to
//! the resilience [`Supervisor`]: the program executes down the ladder
//! (default: just `--backend`) under the given budget, and `--journal`
//! prints the structured run journal — every attempt, fault, retry,
//! breaker transition, and ladder step.
//!
//! `--run-dir DIR` makes the supervised run *durable*: every journal
//! event, budget step, and periodic mid-solve checkpoint is persisted
//! into a crash-safe write-ahead log under `DIR`. After a crash (or a
//! `kill -9`), `--resume --run-dir DIR` picks the run back up —
//! completed ladder rungs are never re-run, and the interrupted solve
//! continues from its last checkpoint.

use nchoosek::cli::{format_assignment, parse_program};
use nchoosek::prelude::*;
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nchoosek <file.nck> [--backend annealer|gate|classical|grover] \
         [--seed N] [--reads N] [--qubo] [--stages] \
         [--ladder a,b,c] [--deadline-ms N] [--max-attempts N] [--journal] \
         [--run-dir DIR] [--resume]"
    );
    ExitCode::from(2)
}

/// Build the named backend with its paper-default device preset.
fn make_backend(name: &str, reads: usize) -> Option<Box<dyn Backend>> {
    match name {
        "annealer" => Some(Box::new(AnnealerBackend::new(AnnealerDevice::advantage_4_1(), reads))),
        "gate" => {
            Some(Box::new(GateModelBackend::new(GateModelDevice::ibmq_brooklyn(), 1, 4000, 30)))
        }
        "grover" => Some(Box::new(GroverBackend::default())),
        "classical" => Some(Box::new(ClassicalBackend::default())),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut backend = "annealer".to_string();
    let mut seed = 42u64;
    let mut reads = 100usize;
    let mut dump_qubo = false;
    let mut show_stages = false;
    let mut ladder_arg: Option<String> = None;
    let mut deadline_ms: Option<u64> = None;
    let mut max_attempts: Option<u32> = None;
    let mut show_journal = false;
    let mut run_dir: Option<String> = None;
    let mut resume = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--run-dir" => match it.next() {
                Some(d) => run_dir = Some(d),
                None => return usage(),
            },
            "--resume" => resume = true,
            "--backend" => match it.next() {
                Some(b) => backend = b,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--reads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(r) => reads = r,
                None => return usage(),
            },
            "--ladder" => match it.next() {
                Some(l) => ladder_arg = Some(l),
                None => return usage(),
            },
            "--deadline-ms" => match it.next().and_then(|s| s.parse().ok()) {
                Some(d) => deadline_ms = Some(d),
                None => return usage(),
            },
            "--max-attempts" => match it.next().and_then(|s| s.parse().ok()) {
                Some(a) => max_attempts = Some(a),
                None => return usage(),
            },
            "--journal" => show_journal = true,
            "--qubo" => dump_qubo = true,
            "--stages" => show_stages = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{file}: {} variables, {} hard + {} soft constraints",
        program.num_vars(),
        program.num_hard(),
        program.num_soft()
    );
    if dump_qubo {
        match compile(&program, &CompilerOptions::default()) {
            Ok(c) => {
                println!(
                    "compiled QUBO ({} vars, {} ancillas, W = {}):",
                    c.num_qubo_vars(),
                    c.num_ancillas,
                    c.hard_weight
                );
                print!("{}", nck_qubo::to_qubo_file(&c.qubo));
            }
            Err(e) => {
                eprintln!("error: compile failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    if resume && run_dir.is_none() {
        eprintln!("error: --resume requires --run-dir");
        return usage();
    }
    // Any supervision flag switches the run to the resilience
    // supervisor; `--ladder` defaults to just the selected backend.
    let supervised = ladder_arg.is_some()
        || deadline_ms.is_some()
        || max_attempts.is_some()
        || run_dir.is_some();
    let rung_names: Vec<String> = ladder_arg
        .map(|l| l.split(',').map(str::to_string).collect())
        .unwrap_or_else(|| vec![backend.clone()]);
    let mut rungs = Vec::with_capacity(rung_names.len());
    for name in &rung_names {
        let Some(solver) = make_backend(name, reads) else {
            eprintln!("error: unknown backend {name:?}");
            return usage();
        };
        rungs.push(solver);
    }
    let plan = ExecutionPlan::new(&program);
    let result = if supervised {
        let mut budget = RunBudget::default();
        if let Some(ms) = deadline_ms {
            budget.deadline = Some(Duration::from_millis(ms));
        }
        if let Some(a) = max_attempts {
            budget.max_attempts = a;
        }
        let sup = Supervisor {
            budget,
            retry: RetryPolicy { seed, ..RetryPolicy::default() },
            ..Supervisor::default()
        };
        let ladder: Vec<&dyn Backend> = rungs.iter().map(|b| b.as_ref()).collect();
        let run = match &run_dir {
            Some(dir) => {
                let dir = std::path::Path::new(dir);
                if resume {
                    sup.resume_durable(&plan, &ladder, seed, dir)
                } else {
                    sup.run_durable(&plan, &ladder, seed, dir)
                }
            }
            None => sup.run(&plan, &ladder, seed),
        };
        run.map_err(|failure| {
            if show_journal {
                eprint!("{}", failure.journal.render());
            }
            failure.error.to_string()
        })
    } else {
        plan.run(rungs[0].as_ref(), seed).map_err(|e| e.to_string())
    };
    match result {
        Ok(report) => {
            println!(
                "{} result: {} ({} of {} soft constraints; weight {} of optimum {})",
                report.backend,
                report.quality,
                report.soft_satisfied,
                program.num_soft(),
                report.soft_weight,
                report.max_soft
            );
            println!("{}", format_assignment(&program, &report.assignment));
            if show_journal {
                print!("{}", report.journal.render());
            }
            if show_stages {
                print!("{}\n{}", StageTimings::CSV_HEADER, report.timings.csv_rows(report.backend));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
