//! `nchoosek` command-line driver: solve a `.nck` program on a chosen
//! backend.
//!
//! ```text
//! nchoosek <file.nck> [--backend annealer|gate|classical|grover]
//!                     [--seed N] [--reads N] [--qubo]
//! ```

use nchoosek::cli::{format_assignment, parse_program};
use nchoosek::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nchoosek <file.nck> [--backend annealer|gate|classical|grover] \
         [--seed N] [--reads N] [--qubo]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut backend = "annealer".to_string();
    let mut seed = 42u64;
    let mut reads = 100usize;
    let mut dump_qubo = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--backend" => match it.next() {
                Some(b) => backend = b,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--reads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(r) => reads = r,
                None => return usage(),
            },
            "--qubo" => dump_qubo = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{file}: {} variables, {} hard + {} soft constraints",
        program.num_vars(),
        program.num_hard(),
        program.num_soft()
    );
    if dump_qubo {
        match compile(&program, &CompilerOptions::default()) {
            Ok(c) => {
                println!(
                    "compiled QUBO ({} vars, {} ancillas, W = {}):",
                    c.num_qubo_vars(),
                    c.num_ancillas,
                    c.hard_weight
                );
                print!("{}", nck_qubo::to_qubo_file(&c.qubo));
            }
            Err(e) => {
                eprintln!("error: compile failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    let outcome = match backend.as_str() {
        "annealer" => {
            let device = AnnealerDevice::advantage_4_1();
            run_on_annealer(&program, &device, reads, seed)
        }
        "gate" => {
            let device = GateModelDevice::ibmq_brooklyn();
            run_on_gate_model(&program, &device, 1, 4000, 30, seed)
        }
        "grover" => run_on_grover(&program, seed),
        "classical" => match run_classically(&program) {
            Ok((assignment, soft)) => {
                println!("classical optimum: {soft} soft constraint(s) satisfied");
                println!("{}", format_assignment(&program, &assignment));
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        },
        other => {
            eprintln!("error: unknown backend {other:?}");
            return usage();
        }
    };
    match outcome {
        Ok(out) => {
            let ev = program.evaluate(&out.assignment);
            println!(
                "{backend} result: {} ({} of {} soft constraints; weight {} of optimum {})",
                out.quality,
                out.soft_satisfied,
                program.num_soft(),
                ev.soft_weight_satisfied,
                out.max_soft
            );
            println!("{}", format_assignment(&program, &out.assignment));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
