//! `nchoosek` command-line driver: solve a `.nck` program on a chosen
//! backend, selected uniformly through the [`Backend`] trait.
//!
//! ```text
//! nchoosek <file.nck> [--backend annealer|gate|classical|grover]
//!                     [--seed N] [--reads N] [--qubo] [--stages]
//! ```

use nchoosek::cli::{format_assignment, parse_program};
use nchoosek::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: nchoosek <file.nck> [--backend annealer|gate|classical|grover] \
         [--seed N] [--reads N] [--qubo] [--stages]"
    );
    ExitCode::from(2)
}

/// Build the named backend with its paper-default device preset.
fn make_backend(name: &str, reads: usize) -> Option<Box<dyn Backend>> {
    match name {
        "annealer" => Some(Box::new(AnnealerBackend::new(AnnealerDevice::advantage_4_1(), reads))),
        "gate" => {
            Some(Box::new(GateModelBackend::new(GateModelDevice::ibmq_brooklyn(), 1, 4000, 30)))
        }
        "grover" => Some(Box::new(GroverBackend::default())),
        "classical" => Some(Box::new(ClassicalBackend::default())),
        _ => None,
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut file = None;
    let mut backend = "annealer".to_string();
    let mut seed = 42u64;
    let mut reads = 100usize;
    let mut dump_qubo = false;
    let mut show_stages = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--backend" => match it.next() {
                Some(b) => backend = b,
                None => return usage(),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => return usage(),
            },
            "--reads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(r) => reads = r,
                None => return usage(),
            },
            "--qubo" => dump_qubo = true,
            "--stages" => show_stages = true,
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ if file.is_none() && !arg.starts_with('-') => file = Some(arg),
            _ => return usage(),
        }
    }
    let Some(file) = file else { return usage() };
    let text = match std::fs::read_to_string(&file) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let program = match parse_program(&text) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {file}: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "{file}: {} variables, {} hard + {} soft constraints",
        program.num_vars(),
        program.num_hard(),
        program.num_soft()
    );
    if dump_qubo {
        match compile(&program, &CompilerOptions::default()) {
            Ok(c) => {
                println!(
                    "compiled QUBO ({} vars, {} ancillas, W = {}):",
                    c.num_qubo_vars(),
                    c.num_ancillas,
                    c.hard_weight
                );
                print!("{}", nck_qubo::to_qubo_file(&c.qubo));
            }
            Err(e) => {
                eprintln!("error: compile failed: {e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    let Some(solver) = make_backend(&backend, reads) else {
        eprintln!("error: unknown backend {backend:?}");
        return usage();
    };
    let plan = ExecutionPlan::new(&program);
    match plan.run(solver.as_ref(), seed) {
        Ok(report) => {
            println!(
                "{} result: {} ({} of {} soft constraints; weight {} of optimum {})",
                report.backend,
                report.quality,
                report.soft_satisfied,
                program.num_soft(),
                report.soft_weight,
                report.max_soft
            );
            println!("{}", format_assignment(&program, &report.assignment));
            if show_stages {
                print!("{}\n{}", StageTimings::CSV_HEADER, report.timings.csv_rows(&backend));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
