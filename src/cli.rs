//! Text format for NchooseK programs and the CLI driver logic.
//!
//! The `.nck` format, one statement per line (`#` comments):
//!
//! ```text
//! var a b c            # declare variables
//! nck a b : 0 1        # hard constraint, selection after ':'
//! nck b c : 1
//! soft a : 0           # soft constraint (weight 1)
//! soft*3 b : 1         # weighted soft constraint
//! ```
//!
//! Variables may repeat inside a collection (`nck a a b : 2`), matching
//! the paper's repeated-variable encodings.

use nck_core::{NckError, Program, Var};
use std::collections::HashMap;

/// Parse a `.nck` document into a program.
pub fn parse_program(text: &str) -> Result<Program, String> {
    let mut program = Program::new();
    let mut vars: HashMap<String, Var> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        let mut parts = line.split_whitespace();
        let head = parts.next().expect("non-empty line");
        match head {
            "var" => {
                for name in parts {
                    let v = program.new_var(name).map_err(|e: NckError| err(e.to_string()))?;
                    vars.insert(name.to_string(), v);
                }
            }
            _ if head == "nck" || head == "soft" || head.starts_with("soft*") => {
                let weight: u32 = if let Some(w) = head.strip_prefix("soft*") {
                    w.parse().map_err(|e| err(format!("bad weight {w:?}: {e}")))?
                } else {
                    1
                };
                let rest: Vec<&str> = parts.collect();
                let split = rest
                    .iter()
                    .position(|&t| t == ":")
                    .ok_or_else(|| err("missing ':' between collection and selection".into()))?;
                let (collection_toks, selection_toks) = rest.split_at(split);
                let selection_toks = &selection_toks[1..];
                if collection_toks.is_empty() {
                    return Err(err("empty variable collection".into()));
                }
                if selection_toks.is_empty() {
                    return Err(err("empty selection set".into()));
                }
                let mut collection = Vec::with_capacity(collection_toks.len());
                for name in collection_toks {
                    let v = *vars
                        .get(*name)
                        .ok_or_else(|| err(format!("unknown variable {name:?}")))?;
                    collection.push(v);
                }
                let mut selection = Vec::with_capacity(selection_toks.len());
                for tok in selection_toks {
                    selection.push(
                        tok.parse::<u32>()
                            .map_err(|e| err(format!("bad selection value {tok:?}: {e}")))?,
                    );
                }
                let result = if head == "nck" {
                    program.nck(collection, selection)
                } else {
                    program.nck_soft_weighted(collection, selection, weight)
                };
                result.map_err(|e| err(e.to_string()))?;
            }
            other => return Err(err(format!("unknown statement {other:?}"))),
        }
    }
    Ok(program)
}

/// Render an assignment using the program's variable names.
pub fn format_assignment(program: &Program, assignment: &[bool]) -> String {
    (0..program.num_vars())
        .map(|i| format!("{}={}", program.name(Var::new(i as u32)), u8::from(assignment[i])))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_intro() {
        let p =
            parse_program("# the paper's intro example\nvar a b c\nnck a b : 0 1\nnck b c : 1\n")
                .unwrap();
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_hard(), 2);
        assert!(p.all_hard_satisfied(&[false, true, false]));
        assert!(!p.all_hard_satisfied(&[true, true, false]));
    }

    #[test]
    fn parses_soft_and_weights() {
        let p = parse_program("var x y\nsoft x : 0\nsoft*4 y : 1\n").unwrap();
        assert_eq!(p.num_soft(), 2);
        assert_eq!(p.total_soft_weight(), 5);
    }

    #[test]
    fn repeated_variables_in_collection() {
        let p = parse_program("var x y z\nnck x y z z z : 0 1 2 4 5\n").unwrap();
        let c = &p.constraints()[0];
        assert_eq!(c.cardinality(), 5);
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        assert!(parse_program("var a\nnck a 2\n").unwrap_err().contains("line 2"));
        assert!(parse_program("frobnicate\n").unwrap_err().contains("unknown statement"));
        assert!(parse_program("var a\nnck b : 1\n").unwrap_err().contains("unknown variable"));
        assert!(parse_program("var a\nnck a : x\n").unwrap_err().contains("bad selection"));
        assert!(parse_program("var a\nsoft*zero a : 0\n").unwrap_err().contains("bad weight"));
        assert!(parse_program("var a\nnck a : 5\n").unwrap_err().contains("selection value 5"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let p = parse_program("\n# full comment\nvar a  # trailing\n\nnck a : 1\n").unwrap();
        assert_eq!(p.num_hard(), 1);
    }

    #[test]
    fn duplicate_declaration_rejected() {
        assert!(parse_program("var a a\n").unwrap_err().contains("registered twice"));
    }

    #[test]
    fn format_assignment_uses_names() {
        let p = parse_program("var alpha beta\nnck alpha : 1\n").unwrap();
        assert_eq!(format_assignment(&p, &[true, false]), "alpha=1 beta=0");
    }
}
