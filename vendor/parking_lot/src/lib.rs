//! Stand-in for the `parking_lot` locks (no poisoning): guards are the
//! std guards, but acquiring never returns a poison error — a panic
//! while holding the lock does not wedge later readers.

pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Mutex(std::sync::Mutex::new(t))
    }
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(t: T) -> Self {
        RwLock(std::sync::RwLock::new(t))
    }
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}
