//! Sequential stand-in for the `rayon` 1.10 API surface used by this
//! workspace: same adapters, single-threaded execution.

pub fn current_num_threads() -> usize {
    1
}

pub struct Par<I>(I);

impl<I: Iterator> Par<I> {
    pub fn map<O, F: Fn(I::Item) -> O>(self, f: F) -> Par<std::iter::Map<I, F>> {
        Par(self.0.map(f))
    }
    pub fn filter_map<O, F: Fn(I::Item) -> Option<O>>(
        self,
        f: F,
    ) -> Par<std::iter::FilterMap<I, F>> {
        Par(self.0.filter_map(f))
    }
    pub fn enumerate(self) -> Par<std::iter::Enumerate<I>> {
        Par(self.0.enumerate())
    }
    pub fn for_each<F: Fn(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }
    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
    pub fn reduce<ID, OP>(mut self, id: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: Fn(I::Item, I::Item) -> I::Item,
    {
        let first = self.0.next().unwrap_or_else(&id);
        self.0.fold(first, op)
    }
}

pub trait IntoParallelIterator: IntoIterator + Sized {
    fn into_par_iter(self) -> Par<Self::IntoIter> {
        Par(self.into_iter())
    }
}
impl<T: IntoIterator> IntoParallelIterator for T {}

pub trait ParallelSlice<T> {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>>;
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>>;
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>>;
}
impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> Par<std::slice::Iter<'_, T>> {
        Par(self.iter())
    }
    fn par_iter_mut(&mut self) -> Par<std::slice::IterMut<'_, T>> {
        Par(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, size: usize) -> Par<std::slice::ChunksMut<'_, T>> {
        Par(self.chunks_mut(size))
    }
}

pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelSlice};
}
