//! Functional offline stand-in for the `rand` 0.9 API surface used by
//! this workspace: a seeded xorshift64* generator. Distribution values
//! differ from real `rand`, but everything is deterministic per seed
//! and statistically serviceable, so the full app can run offline.

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}
impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub struct StandardUniform;
pub trait Distribution<T> {
    fn gen(next: u64) -> T;
}
impl Distribution<bool> for StandardUniform {
    fn gen(next: u64) -> bool {
        next & 1 == 1
    }
}
impl Distribution<f64> for StandardUniform {
    fn gen(next: u64) -> f64 {
        (next >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
impl Distribution<f32> for StandardUniform {
    fn gen(next: u64) -> f32 {
        (next >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}
impl Distribution<u64> for StandardUniform {
    fn gen(next: u64) -> u64 {
        next
    }
}
impl Distribution<u32> for StandardUniform {
    fn gen(next: u64) -> u32 {
        (next >> 32) as u32
    }
}
impl Distribution<usize> for StandardUniform {
    fn gen(next: u64) -> usize {
        next as usize
    }
}

/// Element types samplable from a range; the blanket `SampleRange`
/// impls below tie the range's element type to `T` for inference,
/// matching real `rand`'s coherence shape.
pub trait SampleUniform: Copy + Sized {
    fn sample_span(lo: Self, hi: Self, inclusive: bool, next: u64) -> Self;
}

macro_rules! int_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_span(lo: Self, hi: Self, inclusive: bool, next: u64) -> Self {
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(u64::from(inclusive));
                assert!(span != 0 || inclusive, "empty range");
                if span == 0 {
                    return next as $t; // inclusive full-width range
                }
                lo.wrapping_add((next % span) as $t)
            }
        }
    )+};
}
int_uniform!(usize, u8, u32, u64, i32, i64);

macro_rules! float_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_span(lo: Self, hi: Self, _inclusive: bool, next: u64) -> Self {
                let unit = (next >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                lo + (unit as $t) * (hi - lo)
            }
        }
    )+};
}
float_uniform!(f32, f64);

pub trait SampleRange<T> {
    fn sample(self, next: u64) -> T;
}
impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, next: u64) -> T {
        T::sample_span(self.start, self.end, false, next)
    }
}
impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, next: u64) -> T {
        T::sample_span(*self.start(), *self.end(), true, next)
    }
}

pub trait Rng: RngCore {
    fn random<T>(&mut self) -> T
    where
        StandardUniform: Distribution<T>,
    {
        let n = self.next_u64();
        <StandardUniform as Distribution<T>>::gen(n)
    }
    fn random_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        let n = self.next_u64();
        range.sample(n)
    }
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}
impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    /// xorshift64* seeded through one splitmix64 round.
    pub struct StdRng {
        s: u64,
    }
    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut z = state.wrapping_add(0x9e3779b97f4a7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            StdRng { s: (z ^ (z >> 31)) | 1 }
        }
    }
    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.s ^= self.s >> 12;
            self.s ^= self.s << 25;
            self.s ^= self.s >> 27;
            self.s.wrapping_mul(0x2545F4914F6CDD1D)
        }
    }
}

pub mod seq {
    pub trait SliceRandom {
        fn shuffle<R: crate::Rng + ?Sized>(&mut self, rng: &mut R);
    }
    impl<T> SliceRandom for [T] {
        fn shuffle<R: crate::Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}
