//! Type-check-only stub of the `criterion` 0.5 API surface used by the
//! workspace's benches.

use std::fmt::Display;
use std::time::Duration;

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
    pub fn configure_from_args(self) -> Self {
        self
    }
    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }
}

pub struct BenchmarkGroup;

impl BenchmarkGroup {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }
    pub fn finish(self) {}
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = f();
    }
}

pub struct BenchmarkId;

impl BenchmarkId {
    pub fn new(_group: impl Into<String>, _param: impl Display) -> Self {
        BenchmarkId
    }
    pub fn from_parameter(_param: impl Display) -> Self {
        BenchmarkId
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $config;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
