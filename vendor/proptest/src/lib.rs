//! Type-check-only stub of the `proptest` 1.x API surface used by this
//! workspace. The `proptest!` macro expands each property to an
//! `#[ignore]`d test whose strategy bindings come from a diverging
//! helper, so bodies type-check but never run.

use std::marker::PhantomData;

pub trait Strategy: Sized {
    type Value;

    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
        Map(self, f)
    }
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F> {
        FlatMap(self, f)
    }
    fn prop_filter<M, F: Fn(&Self::Value) -> bool>(self, _whence: M, f: F) -> Filter<Self, F> {
        Filter(self, f)
    }
}

pub struct Map<S, F>(S, F);
impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
}

pub struct FlatMap<S, F>(S, F);
impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
}

pub struct Filter<S, F>(S, F);
impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
}

impl<T> Strategy for core::ops::Range<T> {
    type Value = T;
}
impl<T> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, G);

pub struct Any<T>(PhantomData<T>);
impl<T> Strategy for Any<T> {
    type Value = T;
}
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    pub struct VecStrategy<S>(S);
    impl<S: super::Strategy> super::Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }
    pub fn vec<S: super::Strategy, Sz>(element: S, _size: Sz) -> VecStrategy<S> {
        VecStrategy(element)
    }

    pub struct BTreeSetStrategy<S>(S);
    impl<S: super::Strategy> super::Strategy for BTreeSetStrategy<S> {
        type Value = std::collections::BTreeSet<S::Value>;
    }
    pub fn btree_set<S: super::Strategy, Sz>(element: S, _size: Sz) -> BTreeSetStrategy<S> {
        BTreeSetStrategy(element)
    }
}

#[derive(Debug)]
pub struct TestCaseError;

pub struct ProptestConfig;
impl ProptestConfig {
    pub fn with_cases(_cases: u32) -> Self {
        ProptestConfig
    }
}

/// Produces a value of the strategy's output type; never actually runs
/// (the generated tests are `#[ignore]`d).
pub fn stub_value<S: Strategy>(_s: &S) -> S::Value {
    unimplemented!()
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        #[allow(dead_code)]
        fn __proptest_config_typechecks() {
            let _: $crate::ProptestConfig = $cfg;
        }
        $crate::proptest! { $($rest)* }
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            #[ignore = "proptest stub: type-check only"]
            #[allow(unreachable_code, unused_variables)]
            fn $name() {
                $(let $pat = $crate::stub_value(&$strat);)*
                let body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                body().unwrap();
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}
